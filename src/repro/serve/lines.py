"""Bounded NDJSON line framing over an asyncio stream.

``StreamReader.readline`` raises ``LimitOverrunError``/``ValueError``
when a line exceeds the stream limit, *after* which the unread bytes of
the oversized line are still sitting in the buffer — a naive handler
either kills the connection or reparses garbage.  :class:`LineReader`
owns the framing instead: it reads raw chunks, splits complete lines up
to a byte cap, and when a line overruns the cap it swallows the rest of
that line (however long) and reports a single ``"overflow"`` event, so
the connection survives and the next line parses cleanly.

Used by :class:`~repro.serve.GestureServer` connections and by the
cluster router's client and worker links — every socket that speaks the
protocol frames it the same way.
"""

from __future__ import annotations

__all__ = ["LineReader"]

_CHUNK = 8192


class LineReader:
    """Split a ``StreamReader`` into lines of at most ``max_line`` bytes.

    :meth:`next` returns ``(kind, payload)`` where ``kind`` is:

    * ``"line"`` — one complete line (without its newline);
    * ``"overflow"`` — a line exceeded ``max_line``; its bytes were
      discarded up to and including the terminating newline (one event
      per oversized line, however many chunks it spanned);
    * ``"eof"`` — the peer closed the stream.  A non-empty unterminated
      tail is returned as a final ``"line"`` first, matching
      ``readline``'s end-of-stream behaviour.
    """

    def __init__(self, reader, max_line: int = 65536):
        self._reader = reader
        self.max_line = max_line
        self._buf = bytearray()
        self._pos = 0  # consumed prefix of _buf (compacted lazily)
        self._scanned = 0  # no b"\n" between _pos and this offset
        self._skipping = False  # inside an oversized line's remainder
        self._eof = False

    def _scan(self) -> tuple[str, bytes] | None:
        """One event from the buffer alone, or ``None`` if starved.

        Consumed lines advance ``_pos`` instead of deleting from the
        buffer — a per-line ``del buf[:n]`` memmoves the whole tail, so
        a read chunk holding N lines would cost O(N·chunk) in copying.
        The consumed prefix is dropped once per starved scan.
        """
        buf = self._buf
        newline = buf.find(b"\n", self._scanned)
        if newline < 0:
            if self._pos:
                del buf[: self._pos]
                self._pos = 0
            self._scanned = len(buf)
            return None
        line = bytes(buf[self._pos : newline])
        self._pos = newline + 1
        self._scanned = self._pos
        if self._skipping:
            self._skipping = False
            return "overflow", b""
        if len(line) > self.max_line:
            return "overflow", b""
        return "line", line

    def take_buffer(self) -> bytes:
        """Hand over unconsumed bytes (for a framing switch) and reset."""
        data = bytes(self._buf[self._pos :])
        self._buf.clear()
        self._pos = 0
        self._scanned = 0
        return data

    async def next(self) -> tuple[str, bytes]:
        while True:
            event = self._scan()
            if event is not None:
                return event
            self._scanned = len(self._buf)
            if self._skipping:
                # Still inside the oversized line: drop what we have.
                self._buf.clear()
                self._scanned = 0
            elif len(self._buf) > self.max_line:
                self._buf.clear()
                self._scanned = 0
                self._skipping = True
            if self._eof:
                if self._skipping:
                    self._skipping = False
                    return "overflow", b""
                if self._buf:
                    line = bytes(self._buf)
                    self._buf.clear()
                    return "line", line
                return "eof", b""
            chunk = await self._reader.read(_CHUNK)
            if not chunk:
                self._eof = True
            else:
                self._buf.extend(chunk)

    async def next_batch(self) -> list[tuple[str, bytes]]:
        """At least one event, plus every further complete line already
        buffered — lets a consumer process a whole read's worth of lines
        without re-entering the event loop per line."""
        events = [await self.next()]
        if events[0][0] == "eof":
            return events
        while True:
            event = self._scan()
            if event is None:
                return events
            events.append(event)
