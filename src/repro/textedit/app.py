"""The gesture-based text editor — the paper's motivating scenario.

Figure 1's move-text gesture, realized as a two-phase interaction:

* **collection**: the user circles characters.  The gesture is
  recognized (eagerly, by timeout, or on mouse-up).
* **manipulation**: a *snapping cursor* tracks the mouse, always sitting
  on a legal destination — the §1 feedback that "confirms that the
  gesture was indeed recognized correctly, and allows the user to be
  sure of the text's destination before committing".
* **done**: releasing the button moves the circled text to the snapped
  destination.

Delete strikes text out; insert places a caret marker.
"""

from __future__ import annotations

from ..eager import EagerRecognizer, train_eager_recognizer
from ..events import EventQueue, MouseEvent, VirtualClock
from ..geometry import BoundingBox
from ..interaction import (
    DEFAULT_TIMEOUT,
    GestureContext,
    GestureHandler,
    GestureSemantics,
)
from ..mvc import Dispatcher, View
from ..recognizer import GestureClassifier
from .buffer import TextBuffer, TextPosition
from .gestures import TailedGestureGenerator, editing_templates

__all__ = ["TextEditApp", "train_textedit_recognizer"]


def train_textedit_recognizer(
    examples_per_class: int = 12, seed: int = 9
) -> EagerRecognizer:
    """Train on prefix-only gestures — tails belong to manipulation.

    This is §6's punchline applied: because the interaction is
    two-phase, the recognizer never sees a tail, neither in training nor
    at runtime.
    """
    generator = TailedGestureGenerator(editing_templates(), seed=seed)
    strokes = generator.generate_strokes(examples_per_class, strip_tails=True)
    return train_eager_recognizer(strokes).recognizer


class TextView(View):
    """The editor window; gestures land here."""

    def __init__(self, buffer: TextBuffer, width: float, height: float):
        super().__init__(model=buffer)
        self.buffer = buffer
        self._box = BoundingBox(0.0, 0.0, width, height)

    def bounds(self) -> BoundingBox:
        return self._box


class TextEditApp:
    """A headless, gesture-driven text editor."""

    def __init__(
        self,
        text: str,
        recognizer: EagerRecognizer | GestureClassifier | None = None,
        width: float = 800.0,
        height: float = 600.0,
        use_eager: bool = True,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        if recognizer is None:
            recognizer = train_textedit_recognizer()
        self.buffer = TextBuffer(text, origin=(20.0, 20.0))
        self.view = TextView(self.buffer, width, height)
        self.queue = EventQueue(VirtualClock())
        self.dispatcher = Dispatcher(self.view, self.queue)
        # Observable interaction state (what a UI would draw):
        self.snap_cursor: TextPosition | None = None
        self.last_action: str | None = None
        self.insert_marks: list[TextPosition] = []
        self.gesture_handler = GestureHandler(
            recognizer=recognizer,
            semantics=self._build_semantics(),
            use_eager=use_eager,
            timeout=timeout,
        )
        self.view.add_handler(self.gesture_handler)

    # -- driving ---------------------------------------------------------------

    def post(self, events: list[MouseEvent]) -> None:
        if events and events[0].t < self.queue.clock.now:
            shift = self.queue.clock.now - events[0].t
            events = [
                MouseEvent(e.kind, e.x, e.y, e.t + shift, e.button)
                for e in events
            ]
        self.queue.post_all(events)

    def perform(self, events: list[MouseEvent]) -> None:
        self.post(events)
        self.dispatcher.run()

    # -- the gesture semantics ----------------------------------------------------

    def _build_semantics(self) -> dict[str, GestureSemantics]:
        return {
            "move-text": GestureSemantics(
                recog=self._move_recog,
                manip=self._move_manip,
                done=self._move_done,
            ),
            "delete-text": GestureSemantics(recog=self._delete_recog),
            "insert-text": GestureSemantics(recog=self._insert_recog),
        }

    def _move_recog(self, context: GestureContext):
        """Fix the operand: the circled span of characters."""
        span = self.buffer.span_enclosed_by(context.gesture)
        self.snap_cursor = self.buffer.snap(
            context.current_x, context.current_y
        )
        return span  # may be None: the circle caught nothing

    def _move_manip(self, context: GestureContext) -> None:
        """The snapping cursor: live feedback during manipulation."""
        self.snap_cursor = self.buffer.snap(
            context.current_x, context.current_y
        )

    def _move_done(self, context: GestureContext) -> None:
        """Commit: move the circled text to the snapped destination."""
        span = context.recog
        cursor = self.snap_cursor
        self.snap_cursor = None
        if span is None or cursor is None:
            self.last_action = "move-text: nothing circled"
            return
        line, col_start, col_end = span
        moved_to = self.buffer.move_span(line, col_start, col_end, cursor)
        self.last_action = (
            f"move-text: moved line {line}[{col_start}:{col_end}] "
            f"to line {moved_to.line} col {moved_to.col}"
        )

    def _delete_recog(self, context: GestureContext):
        """Strike-through: delete the characters under the stroke."""
        box = context.gesture.bounding_box()
        # Characters whose centers the strike's bounding box covers.
        victims = [
            (line, col)
            for line, content in enumerate(self.buffer.lines)
            for col in range(len(content))
            if box.contains(*self.buffer.char_center(line, col))
        ]
        if not victims:
            self.last_action = "delete-text: nothing struck"
            return None
        by_line: dict[int, list[int]] = {}
        for line, col in victims:
            by_line.setdefault(line, []).append(col)
        line = max(by_line, key=lambda l: len(by_line[l]))
        cols = by_line[line]
        removed = self.buffer.extract(line, min(cols), max(cols) + 1)
        self.last_action = f"delete-text: removed {removed!r} from line {line}"
        return removed

    def _insert_recog(self, context: GestureContext):
        """Caret: mark an insertion point at the apex of the gesture."""
        apex_x = context.gesture.bounding_box().center.x
        apex_y = context.gesture.bounding_box().min_y
        position = self.buffer.snap(apex_x, apex_y)
        self.insert_marks.append(position)
        self.last_action = (
            f"insert-text: caret at line {position.line} col {position.col}"
        )
        return position
