"""Offline trace analytics: turn an NDJSON trace into a report.

``repro-gestures analyze`` (and this module's API) ingests the canonical
trace the :class:`~repro.obs.Tracer` writes — span/event records, plus
the :class:`~repro.obs.QualityMonitor`'s per-gesture ``quality`` records
when one was attached — and renders the questions the paper's evaluation
asks as a deterministic report:

* **decision-path breakdown** — how gestures got decided: eagerly
  mid-stroke, by the 200 ms motionless timeout, or by button release;
* **per-class eagerness curves** — for each class, the cumulative
  fraction of gestures recognized by each tenth of the stroke, the
  shape of the paper's figures 9 and 10 (the paper reports an average
  of 67.9 % of the gesture consumed before recognition);
* **tail latency** — percentiles of the virtual-time spans: first point
  to decision (``collect``) and decision to commit (``manipulate``);
* **drift summaries** — per-class mean drift score and Rubine-rule
  outlier counts from the quality records.

Quality records may come from a *sampled* monitor (``sample=`` on
:class:`~repro.obs.QualityMonitor`): each record then carries its
``sample_rate``, the report surfaces the rate plus a scaled
``estimated_gestures``, and mixing records taken at different rates —
which would silently bias every aggregate — is rejected with
``ValueError`` rather than averaged over.

Everything is computed from virtual-clock quantities, so the same trace
always produces byte-identical output (the golden-report tests pin
this).  A metrics snapshot may be supplied alongside; it contributes a
counters section and derived rates but is *not* required — and because
it contains one wall-clock histogram it is excluded from golden diffs.

Like the rest of :mod:`repro.obs`, nothing here imports from
:mod:`repro.serve`: the trace file is the interface.
"""

from __future__ import annotations

import json

from ..synth.modal import modality_of

__all__ = [
    "SCHEMA",
    "analyze_records",
    "load_trace",
    "render_json",
    "render_markdown",
    "validate_report",
]

SCHEMA = "repro.obs.analyze/1"

# Nearest-rank percentiles reported in the latency tables.
_PERCENTILES = (50, 90, 99)

# Eagerness-curve resolution: cumulative fraction recognized by each
# tenth of the stroke (the x axis of the paper's figures 9/10).
_CURVE_STEPS = 10


def load_trace(path: str) -> list:
    """Parse an NDJSON trace file into a list of records.

    Blank lines are tolerated (a crashed writer may leave one);
    anything else that fails to parse raises ``ValueError`` with the
    line number.
    """
    records = []
    with open(path) as stream:
        for i, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{i}: not a JSON record: {exc}") from None
    return records


def _round(value, places: int = 6):
    """Round floats (recursively) so reports don't carry 17-digit noise."""
    if isinstance(value, float):
        return round(value, places)
    if isinstance(value, dict):
        return {k: _round(v, places) for k, v in value.items()}
    if isinstance(value, list):
        return [_round(v, places) for v in value]
    return value


def _percentile(sorted_values: list, q: int) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    n = len(sorted_values)
    rank = max(1, -(-q * n // 100))  # ceil(q*n/100), clamped to >= 1
    return sorted_values[rank - 1]


def _span_stats(durations: list) -> dict:
    if not durations:
        return {"count": 0, "mean": None, "p50": None, "p90": None,
                "p99": None, "max": None}
    ordered = sorted(durations)
    stats = {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }
    for q in _PERCENTILES:
        stats[f"p{q}"] = _percentile(ordered, q)
    return stats


def _mean(values: list):
    return sum(values) / len(values) if values else None


def analyze_records(records: list, metrics: dict | None = None) -> dict:
    """One report dict from parsed trace records (+ optional snapshot)."""
    sessions = set()
    paths = {"eager": 0, "timeout": 0, "up": 0}
    per_class: dict = {}
    collect_s: list = []
    manipulate_s: list = []
    evicts = {"idle": 0, "killed": 0}
    errors = 0
    committed = 0
    quality: list = []

    for r in records:
        session = r.get("session")
        if session is not None:
            sessions.add(session)
        rec = r.get("rec")
        if rec == "span":
            phase = r["phase"]
            if phase == "collect":
                collect_s.append(r["t1"] - r["t0"])
            elif phase == "manipulate":
                manipulate_s.append(r["t1"] - r["t0"])
                committed += 1
            elif phase in ("classify", "timeout"):
                reason = r.get("reason", "timeout")
                paths[reason] = paths.get(reason, 0) + 1
                cell = per_class.setdefault(
                    r["class"],
                    {"decisions": 0, "eager": 0, "timeout": 0, "up": 0,
                     "points": []},
                )
                cell["decisions"] += 1
                cell[reason] = cell.get(reason, 0) + 1
                cell["points"].append(r["points"])
        elif rec == "event":
            kind = r.get("kind")
            if kind == "error":
                errors += 1
            elif kind == "evict":
                reason = r.get("reason", "idle")
                evicts[reason] = evicts.get(reason, 0) + 1
        elif rec == "quality":
            quality.append(r)

    class_table = {
        name: {
            "decisions": cell["decisions"],
            "eager": cell["eager"],
            "timeout": cell["timeout"],
            "up": cell["up"],
            "mean_points": _mean(cell["points"]),
        }
        for name, cell in sorted(per_class.items())
    }

    report = {
        "schema": SCHEMA,
        "sessions": {
            "seen": len(sessions),
            "decided": sum(paths.values()),
            "committed": committed,
            "evicted": evicts,
            "errors": errors,
        },
        "decision_paths": paths,
        "per_class": class_table,
        "latency": {
            "collect_s": _span_stats(collect_s),
            "manipulate_s": _span_stats(manipulate_s),
        },
        "quality": _quality_section(quality),
        "eagerness_curve": _eagerness_curves(quality),
        "metrics": _metrics_section(metrics),
    }
    modalities = _modalities_section(per_class, quality)
    if modalities is not None:
        # Only modal traffic grows this section; a trace of plain
        # strokes produces a report byte-identical to pre-modal ones.
        report["modalities"] = modalities
    return _round(report)


def _modalities_section(per_class: dict, quality: list):
    """Decision paths and eagerness regrouped by gesture modality.

    Classes map to modalities via :func:`repro.synth.modal.modality_of`
    (exact names only).  When every class in the trace is a plain
    ``"stroke"`` the section is omitted entirely, keeping reports for
    existing traces byte-identical.
    """
    if not per_class:
        return None
    grouped: dict = {}
    for name, cell in per_class.items():
        modality = modality_of(name)
        g = grouped.setdefault(
            modality,
            {"classes": [], "decisions": 0, "eager": 0, "timeout": 0,
             "up": 0, "points": []},
        )
        g["classes"].append(name)
        g["decisions"] += cell["decisions"]
        g["eager"] += cell["eager"]
        g["timeout"] += cell["timeout"]
        g["up"] += cell["up"]
        g["points"].extend(cell["points"])
    if set(grouped) == {"stroke"}:
        return None
    eagerness: dict = {}
    for r in quality:
        eagerness.setdefault(modality_of(r["class"]), []).append(
            r["eagerness"]
        )
    return {
        modality: {
            "classes": sorted(g["classes"]),
            "decisions": g["decisions"],
            "eager": g["eager"],
            "timeout": g["timeout"],
            "up": g["up"],
            "eager_fraction": (
                g["eager"] / g["decisions"] if g["decisions"] else None
            ),
            "mean_points": _mean(g["points"]),
            "eagerness_mean": _mean(eagerness.get(modality, [])),
        }
        for modality, g in sorted(grouped.items())
    }


def _quality_section(quality: list):
    if not quality:
        return None
    # A record without sample_rate was scored by an unsampled monitor
    # (rate 1.0, stamped implicitly).  One rate per trace set: every
    # aggregate below weighs records equally, which is only sound when
    # they were all kept with the same probability.
    rates = sorted({r.get("sample_rate", 1.0) for r in quality})
    if len(rates) > 1:
        raise ValueError(
            "trace mixes quality records sampled at different rates "
            f"({', '.join(str(r) for r in rates)}); analyze traces from "
            "one sampling configuration at a time"
        )
    rate = rates[0]
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"quality sample_rate {rate} outside (0, 1]")
    per_class: dict = {}
    outliers = 0
    for r in quality:
        cell = per_class.setdefault(
            r["class"],
            {"count": 0, "margins": [], "drifts": [], "dwells": [],
             "eagerness": [], "outliers": 0},
        )
        cell["count"] += 1
        cell["margins"].append(r["margin"])
        cell["drifts"].append(r["drift"])
        cell["dwells"].append(r["dwell"])
        cell["eagerness"].append(r["eagerness"])
        if r.get("outlier"):
            cell["outliers"] += 1
            outliers += 1
    section = {
        "gestures": len(quality),
        "outliers": outliers,
    }
    if rate < 1.0:
        # Horvitz-Thompson scale-up: each kept record stands for 1/rate
        # gestures.  Unsampled traces omit both keys, byte-compatible
        # with pre-sampling reports (the golden tests pin that).
        section["sample_rate"] = rate
        section["estimated_gestures"] = round(len(quality) / rate)
    section["per_class"] = {
        name: {
            "count": cell["count"],
            "margin_mean": _mean(cell["margins"]),
            "margin_min": min(cell["margins"]),
            "drift": _mean(cell["drifts"]),
            "dwell_mean": _mean(cell["dwells"]),
            "eagerness_mean": _mean(cell["eagerness"]),
            "outliers": cell["outliers"],
        }
        for name, cell in sorted(per_class.items())
    }
    return section


def _eagerness_curves(quality: list):
    """Cumulative per-class recognition progress, figures 9/10 style.

    ``curve[i]`` is the fraction of the class's gestures already
    recognized once ``(i + 1) / 10`` of the stroke had been consumed.
    The last entry is 1.0 by construction (every recorded gesture was
    recognized by its end).
    """
    if not quality:
        return None
    per_class: dict = {}
    for r in quality:
        per_class.setdefault(r["class"], []).append(r["eagerness"])
    curves = {}
    for name, values in sorted(per_class.items()):
        counts = [0] * _CURVE_STEPS
        for e in values:
            # Bin i covers (i/10, (i+1)/10]; eagerness is in (0, 1].
            slot = min(_CURVE_STEPS - 1, max(0, -(-e * _CURVE_STEPS // 1) - 1))
            counts[int(slot)] += 1
        total = len(values)
        cumulative = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running / total)
        curves[name] = {
            "count": total,
            "mean": _mean(values),
            "cumulative": cumulative,
        }
    return curves


def _metrics_section(metrics):
    if metrics is None:
        return None
    counters = metrics.get("counters", {})
    rows = counters.get("batch.rows", 0)
    derived = {
        "fallback_rate": (
            counters.get("batch.fallbacks", 0) / rows if rows else None
        ),
        "decisions_per_session": (
            (
                counters.get("pool.decisions.eager", 0)
                + counters.get("pool.decisions.timeout", 0)
                + counters.get("pool.decisions.up", 0)
            )
            / counters.get("pool.sessions_opened", 1)
            if counters.get("pool.sessions_opened", 0)
            else None
        ),
    }
    return {"counters": dict(sorted(counters.items())), "derived": derived}


def render_json(report: dict) -> str:
    """The report as canonical JSON (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _table(headers: list, rows: list) -> list:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return lines


def render_markdown(report: dict) -> str:
    """The report as a deterministic markdown document."""
    s = report["sessions"]
    p = report["decision_paths"]
    lines = [
        "# Trace analysis",
        "",
        f"Schema `{report['schema']}`.",
        "",
        "## Sessions",
        "",
        f"- seen: {s['seen']}",
        f"- decided: {s['decided']}",
        f"- committed: {s['committed']}",
        f"- evicted: {s['evicted']['idle']} idle, {s['evicted']['killed']} killed",
        f"- errors: {s['errors']}",
        "",
        "## Decision paths",
        "",
    ]
    lines += _table(
        ["path", "decisions"],
        [["eager", p["eager"]], ["timeout", p["timeout"]], ["up", p["up"]]],
    )
    modalities = report.get("modalities")
    if modalities is not None:
        lines += [
            "",
            "## Modalities",
            "",
            "Decision paths and eagerness regrouped by interaction "
            "modality (classes outside the modal families count as "
            "plain strokes).",
            "",
        ]
        lines += _table(
            ["modality", "classes", "decisions", "eager", "timeout", "up",
             "eager fraction", "mean points", "eagerness mean"],
            [
                [name, " ".join(m["classes"]), m["decisions"], m["eager"],
                 m["timeout"], m["up"], m["eager_fraction"],
                 m["mean_points"], m["eagerness_mean"]]
                for name, m in modalities.items()
            ],
        )
    lines += ["", "## Per-class decisions", ""]
    lines += _table(
        ["class", "decisions", "eager", "timeout", "up", "mean points"],
        [
            [name, c["decisions"], c["eager"], c["timeout"], c["up"],
             c["mean_points"]]
            for name, c in report["per_class"].items()
        ],
    )
    lines += ["", "## Latency (virtual seconds)", ""]
    lines += _table(
        ["span", "count", "mean", "p50", "p90", "p99", "max"],
        [
            [label, st["count"], st["mean"], st["p50"], st["p90"],
             st["p99"], st["max"]]
            for label, st in (
                ("collect", report["latency"]["collect_s"]),
                ("manipulate", report["latency"]["manipulate_s"]),
            )
        ],
    )
    quality = report["quality"]
    if quality is not None:
        lines += [
            "",
            "## Recognition quality",
            "",
            f"{quality['gestures']} gestures with quality records; "
            f"{quality['outliers']} past Rubine's rejection threshold.",
        ]
        if "sample_rate" in quality:
            lines.append(
                f"Sampled at rate {_fmt(quality['sample_rate'])}: "
                f"~{quality['estimated_gestures']} gestures estimated "
                "fleet-wide."
            )
        lines.append("")
        lines += _table(
            ["class", "count", "margin mean", "margin min", "drift",
             "dwell mean", "eagerness mean", "outliers"],
            [
                [name, c["count"], c["margin_mean"], c["margin_min"],
                 c["drift"], c["dwell_mean"], c["eagerness_mean"],
                 c["outliers"]]
                for name, c in quality["per_class"].items()
            ],
        )
    curves = report["eagerness_curve"]
    if curves is not None:
        lines += [
            "",
            "## Eagerness curves",
            "",
            "Cumulative fraction of each class recognized by each tenth "
            "of the stroke (figures 9/10 in the paper).",
            "",
        ]
        headers = ["class", "count", "mean"] + [
            f"{10 * (i + 1)}%" for i in range(_CURVE_STEPS)
        ]
        lines += _table(
            headers,
            [
                [name, c["count"], c["mean"]] + list(c["cumulative"])
                for name, c in curves.items()
            ],
        )
    metrics = report["metrics"]
    if metrics is not None:
        lines += ["", "## Metrics", ""]
        lines += _table(
            ["counter", "value"],
            [[name, value] for name, value in metrics["counters"].items()],
        )
        lines += ["", "Derived:", ""]
        for name, value in sorted(metrics["derived"].items()):
            lines.append(f"- {name}: {_fmt(value)}")
    return "\n".join(lines) + "\n"


def validate_report(report: dict) -> dict:
    """Raise ``ValueError`` unless ``report`` matches the schema; return it."""
    if not isinstance(report, dict):
        raise ValueError("report is not an object")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"unknown schema {report.get('schema')!r}; expected {SCHEMA!r}"
        )
    required = {
        "sessions": dict,
        "decision_paths": dict,
        "per_class": dict,
        "latency": dict,
    }
    for key, kind in required.items():
        if not isinstance(report.get(key), kind):
            raise ValueError(f"missing or malformed section {key!r}")
    for key in ("seen", "decided", "committed", "errors"):
        if not isinstance(report["sessions"].get(key), int):
            raise ValueError(f"sessions.{key} is not an integer")
    for key in ("eager", "timeout", "up"):
        if not isinstance(report["decision_paths"].get(key), int):
            raise ValueError(f"decision_paths.{key} is not an integer")
    for key in ("collect_s", "manipulate_s"):
        if not isinstance(report["latency"].get(key), dict):
            raise ValueError(f"latency.{key} is not an object")
    for key in ("quality", "eagerness_curve", "metrics"):
        if key not in report:
            raise ValueError(f"missing section {key!r}")
    modalities = report.get("modalities")
    if modalities is not None:
        if not isinstance(modalities, dict) or set(modalities) <= {"stroke"}:
            raise ValueError(
                "modalities section must group at least one modal class"
            )
        for name, cell in modalities.items():
            for key in ("decisions", "eager", "timeout", "up"):
                if not isinstance(cell.get(key), int):
                    raise ValueError(
                        f"modalities[{name!r}].{key} is not an integer"
                    )
            if not isinstance(cell.get("classes"), list):
                raise ValueError(f"modalities[{name!r}].classes is not a list")
    curves = report["eagerness_curve"]
    if curves is not None:
        for name, curve in curves.items():
            cum = curve.get("cumulative")
            if not isinstance(cum, list) or len(cum) != _CURVE_STEPS:
                raise ValueError(
                    f"eagerness_curve[{name!r}] lacks {_CURVE_STEPS} bins"
                )
            if cum and cum[-1] != 1.0:
                raise ValueError(
                    f"eagerness_curve[{name!r}] does not end at 1.0"
                )
    return report
