"""Synthetic load for the serving layer, and the harness that drives it.

A *workload* is one script per client: a list of per-tick operations
(``down``/``move``/``up`` with coordinates, or ``idle``).  The driver
advances every client one operation per tick on a shared virtual
timeline (tick ``k`` is ``t = k * dt``), which is exactly the shape of
traffic the batched evaluator is built for: n sessions each receiving
one point per tick.

Gestures come from the synthetic families used everywhere else in the
reproduction (:mod:`repro.synth`), so the load is seeded and fully
deterministic: the same arguments produce the same event streams, and —
because the pool is virtual-time-driven — the same decision streams, in
both execution modes.  :func:`compare_modes` turns that into a check;
``benchmarks/bench_serve_throughput.py`` turns it into numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..eager import EagerRecognizer
from ..interaction import DEFAULT_TIMEOUT
from ..obs import FaultInjector
from ..synth import GestureGenerator, family_templates
from .pool import Decision, SessionPool

__all__ = [
    "LoadResult",
    "compare_modes",
    "family_templates",  # re-exported from repro.synth
    "generate_workload",
    "run_load",
]


def generate_workload(
    templates: dict,
    clients: int = 64,
    gestures_per_client: int = 4,
    seed: int = 7,
    dwell_every: int = 4,
    dwell_ticks: int = 25,
) -> list[list[tuple]]:
    """One deterministic op script per client.

    Each client draws ``gestures_per_client`` gestures back to back,
    cycling through the family's classes.  Every ``dwell_every``-th
    gesture holds the mouse still for ``dwell_ticks`` ticks a third of
    the way through the stroke, so (with ``dwell_ticks * dt >= timeout``)
    the motionless-timeout path gets exercised alongside eager and
    mouse-up decisions — a pause that early usually lands before eager
    recognition has fired.  Client starts are staggered a few ticks so
    downs don't all land on tick zero.
    """
    generator = GestureGenerator(templates, seed=seed)
    names = generator.class_names
    workload: list[list[tuple]] = []
    for ci in range(clients):
        ops: list[tuple] = [("idle",)] * (ci % 5)
        for gi in range(gestures_per_client):
            name = names[(ci + gi) % len(names)]
            points = list(generator.generate(name).stroke)
            key = f"c{ci}g{gi}"
            dwell_after = (
                max(2, len(points) // 3)
                if dwell_every and gi % dwell_every == dwell_every - 1
                else None
            )
            ops.append(("down", key, points[0].x, points[0].y))
            for i, p in enumerate(points[1:], start=1):
                ops.append(("move", key, p.x, p.y))
                if i == dwell_after:
                    ops.extend([("idle",)] * dwell_ticks)
            ops.append(("up", key, points[-1].x, points[-1].y))
            ops.append(("idle",))
        workload.append(ops)
    return workload


@dataclass
class LoadResult:
    """What one load run did and how fast it did it."""

    mode: str
    clients: int
    points: int
    decisions: int
    commits: int
    errors: int
    elapsed: float
    points_per_sec: float
    p50_us: float
    p99_us: float
    decision_log: list[Decision] = field(default_factory=list)
    # When observability / fault injection were attached:
    metrics: dict | None = None
    profile: dict | None = None
    fault_summary: dict | None = None
    end_t: float = 0.0
    delivered_log: list | None = None  # (t, op) actually applied, post-fault
    kill_log: list | None = None  # (t, key) sessions killed by the injector

    def summary(self) -> str:
        text = (
            f"{self.mode:>10}: {self.clients} clients, "
            f"{self.points} points in {self.elapsed:.3f}s = "
            f"{self.points_per_sec:,.0f} points/sec  "
            f"(latency p50 {self.p50_us:.1f}us, p99 {self.p99_us:.1f}us; "
            f"{self.decisions} decisions, {self.commits} commits, "
            f"{self.errors} errors)"
        )
        if self.fault_summary is not None:
            f = self.fault_summary
            text += (
                f"\n{'faults':>10}: seed {f['seed']}: "
                f"{f['delivered']} delivered, {f['dropped']} dropped, "
                f"{f['duplicated']} duplicated, {f['delayed']} delayed, "
                f"{f['reordered']} ticks reordered, {f['killed']} killed"
            )
        return text


def run_load(
    recognizer: EagerRecognizer,
    workload: list[list[tuple]],
    *,
    batched: bool = True,
    timeout: float = DEFAULT_TIMEOUT,
    dt: float = 0.01,
    collect: bool = False,
    observer=None,
    sink=None,
    fault_plan=None,
    fault_seed: int = 0,
    max_sessions: int | None = None,
) -> LoadResult:
    """Drive a workload through a :class:`SessionPool`; measure it.

    ``observer`` is handed to the pool (see
    :class:`~repro.obs.PoolObserver`); if it carries a metrics registry,
    the result's ``metrics`` field is its final snapshot.  ``sink`` is a
    passive tap on the run's two streams — per tick it receives
    ``sink.ops(t, tick_ops)`` (the post-fault delivered ops) and then
    ``sink.decisions(decided, t)``, every tick including empty ones.
    The sink sees pool output only after the pool computed it and feeds
    nothing back, so its presence cannot change any decision
    (:class:`~repro.modal.ModalComposer` is the canonical sink, and the
    modal tests assert exactly that invariance).  Sink work runs outside
    the timed window; throughput numbers stay comparable.  ``fault_plan``
    (a :class:`~repro.obs.FaultPlan`) routes every tick through a fresh
    ``FaultInjector(fault_plan, fault_seed)`` — fresh per call, so two
    runs (e.g. batched and sequential) see the *identical* fault
    schedule.  With faults on, the run appends a drain phase (advance
    past the last possible motionless timeout, then evict everything
    idle) so sessions whose ``up`` was dropped still reach a terminal
    decision, and — with ``collect`` — records the post-fault
    ``delivered_log`` / ``kill_log`` ground truth for replay checks.
    """
    pool = SessionPool(
        recognizer,
        batched=batched,
        timeout=timeout,
        # One session per client unless told otherwise — two-finger
        # workloads run two concurrent sessions per client.
        max_sessions=max_sessions or len(workload) + 1,
        observer=observer,
    )
    injector = None if fault_plan is None else FaultInjector(fault_plan, fault_seed)
    # Pivot the per-client scripts into per-tick op lists once, so the
    # measured loop is the service work, not script bookkeeping.
    n_ticks = max((len(ops) for ops in workload), default=0)
    ticks: list[list[tuple]] = [[] for _ in range(n_ticks)]
    for ops in workload:
        for k, op in enumerate(ops):
            if op[0] != "idle":
                ticks[k].append(op)
    points = decisions = commits = errors = 0
    log: list[Decision] = []
    delivered_log: list | None = [] if collect and injector is not None else None
    kill_log: list | None = [] if collect and injector is not None else None
    tick_elapsed: list[float] = []
    tick_events: list[int] = []
    # With delays in play, ops can slip past the scripted end; a hard
    # bound keeps a pathological all-delay plan from looping forever.
    max_tick = n_ticks + (0 if injector is None else 64 * n_ticks + 64)
    t = 0.0
    tick = 0
    wall_start = time.perf_counter()
    while tick < n_ticks or (
        injector is not None and injector.pending and tick < max_tick
    ):
        t = tick * dt
        tick_ops = ticks[tick] if tick < n_ticks else []
        kills: list = []
        if injector is not None:
            tick_ops, kills = injector.apply(tick, tick_ops)
        if sink is not None:
            sink.ops(t, tick_ops)
        start = time.perf_counter()
        if tick_ops:
            pool.submit(tick_ops, t)
        for key in kills:
            pool.kill(key, t)
        decided = pool.advance_to(t)
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink.decisions(decided, t)
        events = len(tick_ops)
        points += events
        decisions += len(decided)
        for d in decided:
            if d.kind == "commit":
                commits += 1
            elif d.kind == "error":
                errors += 1
        if collect:
            log.extend(decided)
            if delivered_log is not None:
                delivered_log.extend((t, op) for op in tick_ops)
                kill_log.extend((t, key) for key in kills)
        if events:
            tick_elapsed.append(elapsed)
            tick_events.append(events)
        tick += 1
    if injector is not None:
        # Drain: fire any still-pending motionless timeouts, then evict
        # whatever faults left behind (e.g. sessions whose up was lost).
        t = tick * dt + timeout + dt
        for batch in (pool.advance_to(t), pool.evict_idle(0.0)):
            if sink is not None:
                sink.decisions(batch, t)
            decisions += len(batch)
            for d in batch:
                if d.kind == "commit":
                    commits += 1
                elif d.kind == "error":
                    errors += 1
            if collect:
                log.extend(batch)
    total = time.perf_counter() - wall_start
    if tick_events:
        per_point = np.repeat(
            np.array(tick_elapsed) / np.array(tick_events), tick_events
        )
        p50, p99 = np.percentile(per_point * 1e6, [50, 99])
    else:
        p50 = p99 = 0.0
    return LoadResult(
        mode="batched" if batched else "sequential",
        clients=len(workload),
        points=points,
        decisions=decisions,
        commits=commits,
        errors=errors,
        elapsed=total,
        points_per_sec=points / total if total > 0 else 0.0,
        p50_us=float(p50),
        p99_us=float(p99),
        decision_log=log,
        metrics=(
            observer.metrics.snapshot()
            if observer is not None and getattr(observer, "metrics", None) is not None
            else None
        ),
        profile=(
            observer.profiler.snapshot()
            if observer is not None
            and getattr(observer, "profiler", None) is not None
            else None
        ),
        fault_summary=None if injector is None else injector.summary(),
        end_t=t,
        delivered_log=delivered_log,
        kill_log=kill_log,
    )


def compare_modes(
    recognizer: EagerRecognizer,
    workload: list[list[tuple]],
    *,
    timeout: float = DEFAULT_TIMEOUT,
    dt: float = 0.01,
    fault_plan=None,
    fault_seed: int = 0,
    max_sessions: int | None = None,
) -> tuple[LoadResult, LoadResult]:
    """Run both modes over one workload; insist the decisions match.

    Returns ``(batched, sequential)`` results.  Raises ``AssertionError``
    if the two decision streams differ anywhere — same decisions, same
    order, same timestamps — which is the serving layer's core claim.
    With a ``fault_plan``, both modes are run under the *same* seeded
    fault schedule, so the claim is asserted under chaos too.
    """
    batched = run_load(
        recognizer, workload, batched=True, timeout=timeout, dt=dt,
        collect=True, fault_plan=fault_plan, fault_seed=fault_seed,
        max_sessions=max_sessions,
    )
    sequential = run_load(
        recognizer, workload, batched=False, timeout=timeout, dt=dt,
        collect=True, fault_plan=fault_plan, fault_seed=fault_seed,
        max_sessions=max_sessions,
    )
    if batched.decision_log != sequential.decision_log:
        for i, (b, s) in enumerate(
            zip(batched.decision_log, sequential.decision_log)
        ):
            if b != s:
                raise AssertionError(
                    f"decision {i} differs: batched={b} sequential={s}"
                )
        raise AssertionError(
            f"decision counts differ: batched={len(batched.decision_log)} "
            f"sequential={len(sequential.decision_log)}"
        )
    return batched, sequential
