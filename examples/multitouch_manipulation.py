"""Multi-finger gestures and translate-rotate-scale (paper §6).

"Using the Sensor Frame as an input device, I have implemented a drawing
program based on multiple finger gestures. ... the translate-rotate-
scale gesture is made with two fingers, which during the manipulation
phase allow for simultaneous rotation, translation, and scaling."

This example trains a multi-path classifier on five finger-gesture
classes, classifies unseen gestures (gated by finger count), and then
drives a rectangle through a two-finger translate-rotate-scale
manipulation, printing its corners as the fingers move.

Run:  python examples/multitouch_manipulation.py
"""

import math

from repro.gdp import RectShape
from repro.geometry import Point
from repro.multipath import (
    MultiPathClassifier,
    MultiPathGenerator,
    TwoFingerTracker,
)


def main() -> None:
    # 1. Train the multi-path classifier (one sub-classifier per finger
    #    count, per Rubine's multi-path scheme).
    generator = MultiPathGenerator(seed=3)
    classifier = MultiPathClassifier.train(generator.generate_examples(12))
    print(f"trained path counts: {classifier.path_counts}")

    # 2. Classify unseen finger gestures.
    test = MultiPathGenerator(seed=44)
    print("\nclassifying unseen multi-finger gestures:")
    for class_name in test.class_names:
        gesture = test.generate(class_name)
        predicted = classifier.classify(gesture)
        marker = "" if predicted == class_name else "   <-- wrong"
        print(
            f"  {class_name:>7} ({gesture.path_count} finger"
            f"{'s' if gesture.path_count > 1 else ''}) "
            f"-> {predicted}{marker}"
        )

    # 3. The manipulation phase: two fingers grab a rectangle and
    #    simultaneously translate, rotate and scale it.
    rect = RectShape(100, 100, 200, 160)
    print("\ntwo-finger translate-rotate-scale on a rectangle:")
    print(f"  start corners: {_fmt(rect)}")

    finger_a = Point(100, 130)
    finger_b = Point(200, 130)
    tracker = TwoFingerTracker(finger_a, finger_b)

    # The fingers drift right, spread apart, and twist 30 degrees, over
    # five update steps.
    steps = 5
    total_turn = math.radians(30)
    for step in range(1, steps + 1):
        t = step / steps
        cx, cy = 150 + 60 * t, 130 + 20 * t  # centroid drifts
        half_gap = 50 * (1 + 0.5 * t)  # fingers spread (scale 1.5x)
        angle = total_turn * t
        a = Point(
            cx - half_gap * math.cos(angle), cy - half_gap * math.sin(angle)
        )
        b = Point(
            cx + half_gap * math.cos(angle), cy + half_gap * math.sin(angle)
        )
        rect.apply_transform(tracker.update(a, b))
        print(f"  step {step}: {_fmt(rect)}")

    print(
        f"\nfinal rotation: {math.degrees(rect.angle):.1f} degrees "
        "(fingers twisted 30.0)"
    )
    width = math.dist(*[tuple(c) for c in rect.corners])
    print(f"final diagonal: {width:.1f} (started at {math.dist((100,100),(200,160)):.1f}, fingers spread 1.5x)")


def _fmt(rect: RectShape) -> str:
    (x1, y1), (x2, y2) = rect.corners
    return (
        f"({x1:6.1f},{y1:6.1f})-({x2:6.1f},{y2:6.1f}) "
        f"angle {math.degrees(rect.angle):5.1f}"
    )


if __name__ == "__main__":
    main()
