"""Byte-splicing fast paths for the router's two hot loops.

The router's data plane does exactly two things per session op: rewrite
the ``stroke`` field on the way in (namespace it ``client:stroke``) and
rewrite it back on the way out.  The legacy implementation pays a full
``json.loads`` → mutate → ``json.dumps`` round trip in each direction —
by far the largest per-op cost.  Both rewrites only ever touch one
value span, so when a line is in *canonical form* (the exact text
``json.dumps`` produces, which is what every shipped client and every
worker emits) the rewrite is a string splice at a precomputed offset.

The contract that keeps this invisible:

* the fast parse accepts **only** lines that match the canonical shape
  character-for-character (key order, ``", "`` separators, strict JSON
  numbers, no escapes in the stroke value).  Anything else — compact
  separators, reordered keys, ``NaN``, ``1.``, an escaped quote, a
  control character — returns ``None`` and the caller falls back to
  the exact legacy path, so validation outcomes and error-reply bytes
  are unchanged for every input;
* reply splicing applies only to lines the *worker's* ``json.dumps``
  produced, for which ``dumps(loads(raw))`` is the identity; removing
  the ``client:`` prefix from an escape-free stroke span therefore
  yields the same bytes the legacy decode → re-encode produced.  Any
  reply outside the shape (stats, swap acks, errors, escaped strokes)
  returns ``None``.

Number syntax is validated against the JSON grammar, not ``float()`` —
``float`` accepts ``"1_0"``, ``"+1"``, ``".5"`` and ``"1."``, all of
which ``json.loads`` rejects, and the fast path must reject exactly
what the slow path rejects.
"""

from __future__ import annotations

import re

__all__ = ["OP_LINE", "parse_op_line", "splice_reply"]

# The JSON number grammar (RFC 8259): optional minus, no leading zeros,
# optional fraction, optional signed exponent.
_NUM = r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?"

# A stroke value with no escapes and no raw control characters: its
# decoded text equals its wire text, which is what licenses splicing.
_VALUE = r'[^"\\\x00-\x1f]+'

# Public: the router's batch loop matches against this directly (the
# per-line function-call and tuple costs are measurable at its rates);
# group 2 is the stroke value span, group 3 the ``t`` number.
OP_LINE = re.compile(
    '\\{"op": "(down|move|up)", "stroke": "(%s)", '
    '"x": (?:%s), "y": (?:%s), "t": (%s)\\}\\Z' % (_VALUE, _NUM, _NUM, _NUM)
)

_REPLY = re.compile('\\{"kind": "(recog|manip|commit|evict)", "stroke": "(%s)", ' % _VALUE)


def parse_op_line(line: str):
    """Parse one canonical session-op line without building a dict.

    Returns ``(op, stroke, t, vstart)`` — ``vstart`` is the offset of
    the stroke value, where the caller splices in its ``client:``
    namespace prefix — or ``None`` when the line is anything other than
    a canonical ``down``/``move``/``up`` (the caller must then take the
    legacy parse-validate-reencode path).
    """
    m = OP_LINE.match(line)
    if m is None:
        return None
    op, stroke, t = m.group(1, 2, 3)
    return op, stroke, float(t), m.start(2)


def splice_reply(raw: str):
    """Un-namespace one canonical worker reply by splicing.

    Returns ``(kind, key, line)`` — ``key`` is the namespaced stroke
    (``client:stroke``) for journal bookkeeping, ``line`` is the raw
    reply with the ``client:`` prefix removed from the stroke value —
    or ``None`` for any reply outside the canonical decision shape
    (stats, swap acks, errors, escaped strokes), which the caller must
    decode the legacy way.  Splicing partitions on the *first* colon,
    matching ``key.partition(":")`` in the legacy path.
    """
    m = _REPLY.match(raw)
    if m is None:
        return None
    key = m.group(2)
    cut = key.find(":")
    if cut < 0:
        return None
    start, end = m.span(2)
    return m.group(1), key, raw[:start] + key[cut + 1 :] + raw[end:]
