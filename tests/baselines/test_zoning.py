"""Unit tests for the chain-code baseline."""

import pytest

from repro.baselines import ChainCodeClassifier
from repro.geometry import Stroke
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def classifier(directions_train):
    return ChainCodeClassifier.train(directions_train)


class TestTraining:
    def test_one_mean_per_class(self, classifier, directions_train):
        assert set(classifier.class_names) == set(directions_train)
        assert classifier.means.shape[0] == len(directions_train)

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            ChainCodeClassifier.train({"a": []})

    def test_mismatched_means_rejected(self):
        import numpy as np

        with pytest.raises(ValueError):
            ChainCodeClassifier(["a", "b"], np.zeros((1, 24)))


class TestClassification:
    def test_direction_pairs_are_its_sweet_spot(self, classifier):
        # Chain codes capture direction sequences, which is exactly what
        # separates the 8 direction-pair classes.
        generator = GestureGenerator(eight_direction_templates(), seed=2323)
        hits = total = 0
        for name, strokes in generator.generate_strokes(5).items():
            for stroke in strokes:
                total += 1
                hits += classifier.classify(stroke) == name
        assert hits / total > 0.8

    def test_degenerate_stroke_classifies_to_something(self, classifier):
        result = classifier.classify(Stroke.from_xy([(0, 0), (0.5, 0.5)]))
        assert result in classifier.class_names

    def test_translation_invariance(self, classifier, directions_train):
        stroke = directions_train["lu"][0]
        assert classifier.classify(stroke) == classifier.classify(
            stroke.translated(1000, 1000)
        )

    def test_loses_to_rubine_on_curvature_classes(
        self, directions_train
    ):
        # GDP separates classes by curvature and aspect, where the
        # statistical recognizer should beat the crude chain code — the
        # benchmark's expected "shape".  Smoke-tested here on a small
        # sample so regressions in either side get caught early.
        from repro.recognizer import GestureClassifier
        from repro.synth import GestureGenerator, gdp_templates

        train = GestureGenerator(gdp_templates(), seed=66).generate_strokes(10)
        test = GestureGenerator(gdp_templates(), seed=67).generate_strokes(5)
        chain = ChainCodeClassifier.train(train)
        rubine = GestureClassifier.train(train)

        def accuracy(classify):
            hits = total = 0
            for name, strokes in test.items():
                for stroke in strokes:
                    total += 1
                    hits += classify(stroke) == name
            return hits / total

        assert accuracy(rubine.classify) > accuracy(chain.classify)
