"""Synthetic gesture generation — the reproduction's stand-in for users.

Four template families mirror the paper's four gesture sets:

* :func:`eight_direction_templates` — figure 9's eight direction pairs,
* :func:`ud_templates` — figures 5–7's U and D classes,
* :func:`gdp_templates` — GDP's eleven classes (figures 3 and 10),
* :func:`note_templates` — figure 8's nested note gestures.
"""

from .directions import (
    DIRECTION_VECTORS,
    EIGHT_DIRECTION_CLASSES,
    direction_pair_template,
    eight_direction_templates,
    ud_templates,
)
from .gdp_classes import GDP_CLASS_NAMES, gdp_templates
from .generator import (
    GeneratedGesture,
    GenerationParams,
    GestureGenerator,
    with_params,
)
from .notes import NOTE_CLASS_NAMES, note_templates
from .templates import GestureTemplate, arc_waypoints

__all__ = [
    "DIRECTION_VECTORS",
    "EIGHT_DIRECTION_CLASSES",
    "GDP_CLASS_NAMES",
    "NOTE_CLASS_NAMES",
    "GeneratedGesture",
    "GenerationParams",
    "GestureGenerator",
    "GestureTemplate",
    "arc_waypoints",
    "direction_pair_template",
    "eight_direction_templates",
    "gdp_templates",
    "note_templates",
    "ud_templates",
    "with_params",
]
