"""Unit tests for the stroke-level GestureClassifier."""

import numpy as np
import pytest

from repro.features import features_of
from repro.recognizer import GestureClassifier
from repro.synth import GestureGenerator, eight_direction_templates


class TestTrainClassify:
    def test_class_names_preserved(self, directions_classifier):
        assert set(directions_classifier.class_names) == set(
            eight_direction_templates().keys()
        )

    def test_classifies_training_data_correctly(
        self, directions_classifier, directions_train
    ):
        hits = total = 0
        for name, strokes in directions_train.items():
            for stroke in strokes:
                total += 1
                hits += directions_classifier.classify(stroke) == name
        assert hits / total > 0.95

    def test_generalizes_to_held_out_data(self, directions_classifier):
        generator = GestureGenerator(eight_direction_templates(), seed=777)
        hits = total = 0
        for name, strokes in generator.generate_strokes(10).items():
            for stroke in strokes:
                total += 1
                hits += directions_classifier.classify(stroke) == name
        assert hits / total > 0.9

    def test_classify_features_matches_classify(
        self, directions_classifier, directions_train
    ):
        stroke = directions_train["ur"][0]
        assert directions_classifier.classify(
            stroke
        ) == directions_classifier.classify_features(features_of(stroke))

    def test_evaluations_exposes_all_classes(
        self, directions_classifier, directions_train
    ):
        scores = directions_classifier.evaluations(directions_train["ur"][0])
        assert set(scores) == set(directions_classifier.class_names)
        winner = max(scores, key=scores.get)
        assert winner == directions_classifier.classify(directions_train["ur"][0])


class TestRejection:
    def test_clean_gesture_is_accepted(
        self, directions_classifier, directions_train
    ):
        result = directions_classifier.classify_with_rejection(
            directions_train["ur"][0]
        )
        assert not result.rejected
        assert result.class_name == "ur"

    def test_garbage_is_rejected_as_outlier(self, directions_classifier):
        from repro.geometry import Stroke

        # A gesture far outside the training distribution: a huge spiral.
        import math

        spiral = Stroke.from_xy(
            [
                (math.cos(a) * a * 40, math.sin(a) * a * 40)
                for a in [i * 0.3 for i in range(60)]
            ],
            dt=0.01,
        )
        result = directions_classifier.classify_with_rejection(spiral)
        assert result.rejected

    def test_rejection_reports_probability_and_distance(
        self, directions_classifier, directions_train
    ):
        result = directions_classifier.classify_with_rejection(
            directions_train["dr"][0]
        )
        assert 0.0 < result.probability <= 1.0
        assert result.squared_distance >= 0.0


class TestPersistence:
    def test_round_trip_preserves_decisions(
        self, directions_classifier, directions_train, tmp_path
    ):
        path = tmp_path / "clf.json"
        directions_classifier.save(path)
        clone = GestureClassifier.load(path)
        for name, strokes in directions_train.items():
            for stroke in strokes[:3]:
                assert clone.classify(stroke) == directions_classifier.classify(
                    stroke
                )

    def test_round_trip_preserves_means_and_metric(
        self, directions_classifier, tmp_path
    ):
        path = tmp_path / "clf.json"
        directions_classifier.save(path)
        clone = GestureClassifier.load(path)
        np.testing.assert_allclose(clone.means, directions_classifier.means)
        np.testing.assert_allclose(
            clone.metric.inverse_covariance,
            directions_classifier.metric.inverse_covariance,
        )


class TestErrors:
    def test_training_with_empty_class_raises(self):
        with pytest.raises(ValueError):
            GestureClassifier.train({"a": []})
