"""§4.2's full-classifier setting — C = 11 classes, E = 15 examples each.

"In GDP, C = 11 ... and typically we train with 15 examples of each
class."  The paper reports the full classifier at 99.7% on GDP gestures
(figure 10) and 99.2% on the direction pairs (figure 9).  This bench
trains at the paper's training size and sweeps the training-set size to
show the accuracy saturation the closed-form trainer exhibits.
"""

from conftest import TEST_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.recognizer import GestureClassifier
from repro.synth import GestureGenerator, gdp_templates


def accuracy_at(train_count: int, train_seed: int, test_seed: int) -> float:
    train = GestureGenerator(gdp_templates(), seed=train_seed).generate_strokes(
        train_count
    )
    classifier = GestureClassifier.train(train)
    test = GestureSet.from_generator(
        "test", GestureGenerator(gdp_templates(), seed=test_seed), TEST_PER_CLASS
    )
    hits = sum(
        classifier.classify(example.stroke) == example.class_name
        for example in test
    )
    return hits / len(test)


def test_full_classifier_at_paper_training_size():
    acc = accuracy_at(15, train_seed=91, test_seed=92)
    sweep = {n: accuracy_at(n, 91, 92) for n in (3, 5, 10, 15, 25)}
    lines = [
        "Full classifier accuracy on the GDP gesture set (C = 11)",
        "paper: 99.7% with 10-15 training examples per class",
        "",
        "training examples per class -> accuracy:",
    ]
    lines += [f"  E = {n:>2}: {a:6.1%}" for n, a in sweep.items()]
    write_report("full_classifier_accuracy", "\n".join(lines))
    assert acc > 0.95
    # Accuracy roughly saturates: 15 examples is no worse than 5 by much.
    assert sweep[15] >= sweep[5] - 0.03


def test_full_classifier_training_time(benchmark):
    train = GestureGenerator(gdp_templates(), seed=93).generate_strokes(15)
    classifier = benchmark(lambda: GestureClassifier.train(train))
    assert len(classifier.class_names) == 11


def test_full_classification_time(benchmark):
    train = GestureGenerator(gdp_templates(), seed=94).generate_strokes(15)
    classifier = GestureClassifier.train(train)
    strokes = [
        s
        for strokes in GestureGenerator(
            gdp_templates(), seed=95
        ).generate_strokes(5).values()
        for s in strokes
    ]
    labels = benchmark(lambda: [classifier.classify(s) for s in strokes])
    assert len(labels) == len(strokes)
