"""Unit tests for subgesture enumeration (paper §4.1, figure 4)."""

import numpy as np
import pytest

from repro.eager import MIN_PREFIX_POINTS, prefix_feature_vectors
from repro.features import features_of
from repro.geometry import Stroke


def sample_stroke(n: int = 12) -> Stroke:
    return Stroke.from_xy([(i * 6.0, (i % 3) * 4.0) for i in range(n)], dt=0.01)


class TestEnumeration:
    def test_covers_all_prefixes_from_min(self):
        stroke = sample_stroke(12)
        result = prefix_feature_vectors(stroke)
        assert list(result.lengths) == list(range(MIN_PREFIX_POINTS, 13))
        assert len(result.vectors) == 12 - MIN_PREFIX_POINTS + 1

    def test_vectors_match_batch_computation(self):
        # The figure-4 invariant: the i-th stored vector is exactly the
        # features of g[i].
        stroke = sample_stroke(10)
        result = prefix_feature_vectors(stroke)
        for i in result.lengths:
            np.testing.assert_allclose(
                result.vector_for_length(i),
                features_of(stroke.subgesture(i)),
                atol=1e-9,
            )

    def test_last_vector_is_full_gesture(self):
        stroke = sample_stroke(9)
        result = prefix_feature_vectors(stroke)
        np.testing.assert_allclose(
            result.vectors[-1], features_of(stroke), atol=1e-9
        )

    def test_custom_min_points(self):
        stroke = sample_stroke(10)
        result = prefix_feature_vectors(stroke, min_points=5)
        assert list(result.lengths) == [5, 6, 7, 8, 9, 10]

    def test_short_stroke_still_enumerated(self):
        # GDP's dot gesture has 2 points — below the default minimum.
        stroke = sample_stroke(2)
        result = prefix_feature_vectors(stroke)
        assert len(result.vectors) == 1
        np.testing.assert_allclose(
            result.vectors[0], features_of(stroke), atol=1e-9
        )

    def test_empty_stroke_raises(self):
        with pytest.raises(ValueError):
            prefix_feature_vectors(Stroke())

    def test_vector_for_length_out_of_range(self):
        result = prefix_feature_vectors(sample_stroke(8))
        with pytest.raises(ValueError):
            result.vector_for_length(2)
        with pytest.raises(ValueError):
            result.vector_for_length(9)

    def test_single_sweep_is_linear_work(self):
        # 500 points should enumerate instantly; this is a smoke check
        # that the implementation is the O(n) incremental sweep, not
        # O(n^2) batch recomputation (which would take visibly long at
        # tens of thousands of points).
        stroke = sample_stroke(500)
        result = prefix_feature_vectors(stroke)
        assert len(result.vectors) == 500 - MIN_PREFIX_POINTS + 1
