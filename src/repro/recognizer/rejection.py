"""Rejection rules for the statistical recognizer.

Rubine's recognizer can refuse to classify a gesture that is either
*ambiguous* (two classes score nearly alike) or an *outlier* (far from
every class mean).  Neither rule appears in the USENIX paper's evaluation
— there every test gesture is classified — but GDP-style applications use
rejection to avoid acting on garbage input, so the rules ship as part of
the substrate:

* ambiguity: reject when the softmax probability of the winner falls
  below ``min_probability`` (Rubine used 0.95);
* outlier: reject when the squared Mahalanobis distance to the winning
  class mean exceeds ``max_squared_distance`` (Rubine used half the
  squared feature count).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linear import LinearClassifier
from .mahalanobis import MahalanobisMetric

__all__ = ["RejectionPolicy", "RejectionResult"]


@dataclass(frozen=True)
class RejectionResult:
    """Outcome of a classify-with-rejection call."""

    class_name: str | None  # None when rejected
    probability: float
    squared_distance: float

    @property
    def rejected(self) -> bool:
        return self.class_name is None


@dataclass
class RejectionPolicy:
    """Thresholds for refusing a classification."""

    min_probability: float = 0.95
    max_squared_distance: float | None = None

    @classmethod
    def rubine_default(cls, num_features: int) -> "RejectionPolicy":
        """Rubine's published thresholds: P >= 0.95, d^2 <= F^2 / 2."""
        return cls(
            min_probability=0.95,
            max_squared_distance=num_features * num_features / 2.0,
        )

    def apply(
        self,
        classifier: LinearClassifier,
        metric: MahalanobisMetric,
        means: np.ndarray,
        features: np.ndarray,
    ) -> RejectionResult:
        """Classify ``features``, rejecting per the thresholds."""
        winner, _ = classifier.classify_with_scores(features)
        probability = classifier.probability_correct(features)
        mean = means[classifier.class_index(winner)]
        squared = metric.squared_distance(features, mean)
        accepted = probability >= self.min_probability and (
            self.max_squared_distance is None
            or squared <= self.max_squared_distance
        )
        return RejectionResult(
            class_name=winner if accepted else None,
            probability=probability,
            squared_distance=squared,
        )
