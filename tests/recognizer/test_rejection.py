"""Unit tests for the rejection policy."""

import numpy as np
import pytest

from repro.recognizer import (
    LinearClassifier,
    MahalanobisMetric,
    RejectionPolicy,
    RejectionResult,
)


@pytest.fixture
def setup():
    classifier = LinearClassifier(
        class_names=["a", "b"],
        weights=np.array([[1.0, 0.0], [0.0, 1.0]]),
        constants=np.zeros(2),
    )
    metric = MahalanobisMetric(np.eye(2))
    means = np.array([[10.0, 0.0], [0.0, 10.0]])
    return classifier, metric, means


class TestAmbiguityRejection:
    def test_confident_input_accepted(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.9)
        result = policy.apply(classifier, metric, means, np.array([10.0, 0.0]))
        assert result.class_name == "a"
        assert not result.rejected

    def test_ambiguous_input_rejected(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.9)
        result = policy.apply(classifier, metric, means, np.array([5.0, 5.0]))
        assert result.rejected
        assert result.probability == pytest.approx(0.5)

    def test_threshold_zero_accepts_everything(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.0, max_squared_distance=None)
        result = policy.apply(classifier, metric, means, np.array([5.0, 5.0]))
        assert not result.rejected


class TestOutlierRejection:
    def test_far_input_rejected(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.0, max_squared_distance=4.0)
        result = policy.apply(
            classifier, metric, means, np.array([100.0, 0.0])
        )
        assert result.rejected
        assert result.squared_distance > 4.0

    def test_near_input_accepted(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.0, max_squared_distance=4.0)
        result = policy.apply(classifier, metric, means, np.array([10.5, 0.0]))
        assert not result.rejected

    def test_none_disables_distance_check(self, setup):
        classifier, metric, means = setup
        policy = RejectionPolicy(min_probability=0.0, max_squared_distance=None)
        result = policy.apply(classifier, metric, means, np.array([1e6, 0.0]))
        assert not result.rejected


class TestDefaults:
    def test_rubine_default_thresholds(self):
        policy = RejectionPolicy.rubine_default(num_features=13)
        assert policy.min_probability == 0.95
        assert policy.max_squared_distance == pytest.approx(13 * 13 / 2)

    def test_result_dataclass(self):
        accepted = RejectionResult("x", 0.99, 1.0)
        rejected = RejectionResult(None, 0.5, 1.0)
        assert not accepted.rejected
        assert rejected.rejected
