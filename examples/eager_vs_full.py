"""Eager vs full recognition: reproduce the paper's §5 comparison.

Runs the figure-9 protocol (8 direction-pair classes, 10 train / 30 test
per class) and the figure-10 protocol (11 GDP classes), printing the
accuracy and eagerness comparison alongside the paper's numbers, plus
the figures-5/6-style subgesture labelling diagram that shows *why*
eager recognition works.

Run:  python examples/eager_vs_full.py
"""

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.evaluate import (
    comparison_table,
    evaluate_recognizer,
    labelling_diagram,
)
from repro.synth import (
    GenerationParams,
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
    ud_templates,
)


def run_protocol(templates, train_seed, test_seed):
    train_gen = GestureGenerator(templates, seed=train_seed)
    report = train_eager_recognizer(train_gen.generate_strokes(10))
    # Test gestures occasionally loop their corners 270 degrees — the
    # paper's dominant eager error mode.
    test_gen = GestureGenerator(
        templates,
        params=GenerationParams(corner_loop_probability=0.08),
        seed=test_seed,
    )
    test_set = GestureSet.from_generator("test", test_gen, 30)
    return evaluate_recognizer(report.recognizer, test_set)


def main() -> None:
    print("running the figure-9 protocol (8 direction pairs)...")
    fig9 = run_protocol(eight_direction_templates(), 101, 202)
    print("running the figure-10 protocol (11 GDP classes)...")
    fig10 = run_protocol(gdp_templates(), 303, 404)

    print()
    print(comparison_table([
        ("fig 9: direction pairs", fig9),
        ("fig 10: GDP gestures", fig10),
    ]))
    print()
    print("paper, for comparison:")
    print("  fig 9:  full 99.2%   eager 97.0%   seen 67.9%   oracle 59.4%")
    print("  fig 10: full 99.7%   eager 93.5%   seen 60.5%")

    # Why it works: the subgesture labelling of the U/D toy example.
    print("\nsubgesture labelling on the U/D example (figures 5-6):")
    print("(uppercase = complete subgesture, lowercase = incomplete;")
    print(" note the shared horizontal prefix is all-lowercase = ambiguous)")
    ud_gen = GestureGenerator(
        ud_templates(),
        params=GenerationParams(rotation_sigma=0.04, jitter=0.8),
        seed=404,
    )
    ud_report = train_eager_recognizer(ud_gen.generate_strokes(15))
    print(labelling_diagram(ud_report, max_examples=4))
    print(
        f"\n({ud_report.moved_count} accidentally complete subgestures were "
        f"moved into incomplete classes during training)"
    )


if __name__ == "__main__":
    main()
