"""Batched classification must be bit-identical to the per-vector loop."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

finite = st.floats(
    min_value=-200.0, max_value=200.0, allow_nan=False, allow_infinity=False
)


@st.composite
def feature_stacks(draw, num_features=13, max_rows=12):
    n = draw(st.integers(min_value=1, max_value=max_rows))
    return np.array(
        [[draw(finite) for _ in range(num_features)] for _ in range(n)]
    )


class TestLinearClassifyMany:
    @given(feature_stacks())
    @settings(max_examples=60, deadline=None)
    def test_identical_to_sequential(self, directions_classifier, stack):
        linear = directions_classifier.linear
        batched = linear.classify_many(stack)
        assert batched == [linear.classify(row) for row in stack]

    def test_exact_ties_break_identically(self, directions_classifier):
        """Rows engineered onto decision boundaries still agree exactly."""
        linear = directions_classifier.linear
        # A zero row scores exactly the constants; duplicate weights
        # elsewhere would tie — argmax tie-breaking must match.
        stack = np.zeros((4, linear.num_features))
        assert linear.classify_many(stack) == [
            linear.classify(row) for row in stack
        ]

    def test_evaluations_many_shape_and_values(self, directions_classifier):
        linear = directions_classifier.linear
        rng = np.random.default_rng(3)
        stack = rng.normal(size=(7, linear.num_features)) * 40.0
        scores = linear.evaluations_many(stack)
        assert scores.shape == (7, linear.num_classes)
        np.testing.assert_allclose(
            scores, [linear.evaluations(row) for row in stack], rtol=1e-12
        )

    def test_rejects_wrong_width(self, directions_classifier):
        linear = directions_classifier.linear
        with pytest.raises(ValueError):
            linear.evaluations_many(np.zeros((3, linear.num_features + 1)))

    def test_extra_tolerance_forces_sequential_agreement(
        self, directions_classifier
    ):
        """A huge extra tolerance re-routes every row; results still match."""
        linear = directions_classifier.linear
        rng = np.random.default_rng(5)
        stack = rng.normal(size=(9, linear.num_features)) * 40.0
        everything = np.full(9, 1e30)
        assert linear.classify_many(stack, everything) == [
            linear.classify(row) for row in stack
        ]


class TestClassifierAndAucMany:
    @given(feature_stacks())
    @settings(max_examples=40, deadline=None)
    def test_full_classifier_matches(self, directions_classifier, stack):
        batched = directions_classifier.classify_features_many(stack)
        assert batched == [
            directions_classifier.classify_features(row) for row in stack
        ]

    @given(feature_stacks())
    @settings(max_examples=40, deadline=None)
    def test_masked_classifier_matches(self, masked_recognizer, stack):
        masked = masked_recognizer.full_classifier
        batched = masked.classify_features_many(stack)
        assert batched == [masked.classify_features(row) for row in stack]

    @given(feature_stacks())
    @settings(max_examples=40, deadline=None)
    def test_auc_decision_matches(self, directions_recognizer, stack):
        auc = directions_recognizer.auc
        batched = auc.is_unambiguous_many(stack)
        assert batched.tolist() == [auc.is_unambiguous(row) for row in stack]
