"""Opt-in perf-counter profiling for the serve hot path.

:class:`PerfProfiler` is a named accumulator of wall-clock section
timings.  The pool and the batch evaluator wrap their hot sections —
feature update, fused evaluation, exact fallback, timeout
classification — in ``perf_counter()`` pairs *only when a profiler is
attached*, mirroring the one-``is not None``-test-per-site discipline
the rest of :mod:`repro.obs` uses.  Detached (the default), the hot
path contains no clock reads.

Wall-clock numbers are inherently nondeterministic, so the profiler
lives outside the metrics registry: its :meth:`snapshot` is reported
through the ``stats`` protocol under a separate ``"profile"`` key and
lands in ``BENCH_*.json``, never in golden files.
"""

from __future__ import annotations

__all__ = ["PerfProfiler"]


class PerfProfiler:
    """Accumulates ``(count, total seconds, units)`` per named section.

    ``units`` lets a section normalise by its natural workload size
    (points updated, rows evaluated) so snapshots can report both
    mean-per-call and mean-per-unit costs.
    """

    def __init__(self):
        self._sections: dict[str, list] = {}

    def add(self, name: str, seconds: float, units: int = 1) -> None:
        """Record one timed section: ``seconds`` spent over ``units`` items."""
        cell = self._sections.get(name)
        if cell is None:
            cell = self._sections[name] = [0, 0.0, 0]
        cell[0] += 1
        cell[1] += seconds
        cell[2] += units

    def snapshot(self) -> dict:
        """Sorted per-section summary, JSON-ready.

        ``total_us`` / ``mean_us`` are per call; ``us_per_unit`` is
        normalised by the recorded units (``None`` when no units were
        recorded, e.g. a section that only measures fixed overhead).
        """
        out = {}
        for name in sorted(self._sections):
            count, total, units = self._sections[name]
            out[name] = {
                "count": count,
                "total_us": total * 1e6,
                "mean_us": (total / count) * 1e6 if count else 0.0,
                "us_per_unit": (total / units) * 1e6 if units else None,
                "units": units,
            }
        return out
