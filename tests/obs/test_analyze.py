"""Golden-report tests for the offline trace analytics.

The same checked-in GDP strokes that pin the PR 2 golden trace are
replayed here with the :class:`~repro.obs.QualityMonitor` attached
(tracer only — no metrics, so every byte of the trace is a function of
virtual time and the checked-in dataset).  Three goldens fall out:

* ``golden/gdp_quality_trace.ndjson`` — the trace including the
  per-gesture ``quality`` records;
* ``golden/gdp_analyze.json`` / ``golden/gdp_analyze.md`` — the
  analyzer's two renderings of that trace, byte-for-byte.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m pytest tests/obs/test_analyze.py --regen-golden

The eagerness acceptance test closes the loop against the recognizer
itself: the curve the analyzer draws from pool-served traffic must
match the curve computed from :meth:`EagerRecognizer.recognize` replay
of the same strokes, per class and per trigger point.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.obs import PoolObserver, QualityMonitor, Tracer
from repro.obs.analyze import (
    SCHEMA,
    analyze_records,
    load_trace,
    render_json,
    render_markdown,
    validate_report,
)
from repro.serve import SessionPool

DATA = Path(__file__).parent / "data" / "gdp_strokes.json"
GOLDEN_TRACE = Path(__file__).parent / "golden" / "gdp_quality_trace.ndjson"
GOLDEN_JSON = Path(__file__).parent / "golden" / "gdp_analyze.json"
GOLDEN_MD = Path(__file__).parent / "golden" / "gdp_analyze.md"

DT = 0.01
TIMEOUT = 0.2
DWELL_EVERY = 4
DWELL_TICKS = 25


@pytest.fixture(scope="module")
def analyze_setup():
    gesture_set = GestureSet.load(DATA)
    recognizer = train_eager_recognizer(gesture_set.strokes_by_class()).recognizer
    # The same replay scripts as test_golden_traces.py: staggered
    # starts, a dwell for every 4th stroke (timeout path), and a
    # manipulation drag after half the ups.
    scripts = []
    for i, example in enumerate(gesture_set.examples[:24]):
        points = list(example.stroke)
        key = f"s{i}"
        ops: list = [("idle",)] * (i % 7)
        ops.append(("down", key, points[0].x, points[0].y))
        dwell_after = max(2, len(points) // 3) if i % DWELL_EVERY == 3 else None
        for j, p in enumerate(points[1:], start=1):
            ops.append(("move", key, p.x, p.y))
            if j == dwell_after:
                ops.extend([("idle",)] * DWELL_TICKS)
        if i % 2 == 0:
            last = points[-1]
            for k in range(3):
                ops.append(("move", key, last.x + 5.0 * (k + 1), last.y))
        ops.append(("up", key, points[-1].x, points[-1].y))
        scripts.append(ops)
    return recognizer, scripts, [list(e.stroke) for e in gesture_set.examples[:24]]


def _replay(recognizer, scripts, batched: bool) -> str:
    tracer = Tracer()
    pool = SessionPool(
        recognizer,
        batched=batched,
        timeout=TIMEOUT,
        max_sessions=len(scripts) + 1,
        observer=PoolObserver(
            tracer=tracer,
            quality=QualityMonitor(recognizer, tracer=tracer),
        ),
    )
    n_ticks = max(len(ops) for ops in scripts)
    for tick in range(n_ticks + 1):
        ops = [
            script[tick]
            for script in scripts
            if tick < len(script) and script[tick][0] != "idle"
        ]
        if ops:
            pool.submit(ops, tick * DT)
        pool.advance_to(tick * DT)
    pool.advance_to((n_ticks + 1) * DT + TIMEOUT)
    return "\n".join(tracer.lines()) + "\n"


def test_golden_quality_trace_matches(analyze_setup, regen_golden):
    recognizer, scripts, _ = analyze_setup
    trace = _replay(recognizer, scripts, batched=True)
    if regen_golden:
        GOLDEN_TRACE.write_text(trace)
    assert trace == GOLDEN_TRACE.read_text()
    # The new records ride alongside, not instead of, the PR 2 stream.
    kinds = {json.loads(line)["rec"] for line in trace.splitlines()}
    assert {"span", "quality"} <= kinds


def test_quality_trace_mode_independent(analyze_setup):
    recognizer, scripts, _ = analyze_setup
    assert _replay(recognizer, scripts, batched=True) == _replay(
        recognizer, scripts, batched=False
    )


def test_golden_analyze_report_matches(analyze_setup, regen_golden):
    """Both renderings of the golden trace are byte-reproducible."""
    report = validate_report(
        analyze_records(load_trace(str(GOLDEN_TRACE)))
    )
    as_json = render_json(report)
    as_md = render_markdown(report)
    if regen_golden:
        GOLDEN_JSON.write_text(as_json)
        GOLDEN_MD.write_text(as_md)
    assert as_json == GOLDEN_JSON.read_text()
    assert as_md == GOLDEN_MD.read_text()
    # The golden workload exercises the eager and timeout paths (its
    # dwells decide every straggler before release; the up path is
    # covered by the direct-replay test below).
    paths = report["decision_paths"]
    assert paths["eager"] > 0 and paths["timeout"] > 0
    assert report["sessions"]["seen"] == 24
    assert report["quality"]["gestures"] == 24


def test_cli_analyze_reproduces_golden_report(capsys):
    """``repro-gestures analyze`` emits the golden JSON byte-for-byte."""
    from repro.cli import main

    assert main(["analyze", str(GOLDEN_TRACE), "--format", "json"]) == 0
    assert capsys.readouterr().out == GOLDEN_JSON.read_text()


def test_eagerness_curve_matches_direct_recognizer_replay(analyze_setup):
    """Pool-served eagerness equals the recognizer's own eager loop.

    Each stroke runs through a fresh pool at its native timestamps with
    an unreachable timeout, so the only decision paths are eager and
    mouse-up — exactly :meth:`EagerRecognizer.recognize` semantics.  The
    trigger points must agree stroke by stroke, and the analyzer's
    per-class curve must equal the one computed from the direct replay.
    """
    recognizer, _, strokes = analyze_setup
    tracer = Tracer()
    direct = []
    for i, stroke in enumerate(strokes):
        result = recognizer.recognize(stroke)
        direct.append(result)
        pool = SessionPool(
            recognizer,
            batched=True,
            timeout=1e9,
            observer=PoolObserver(
                tracer=tracer, quality=QualityMonitor(recognizer, tracer=tracer)
            ),
        )
        key = f"g{i}"
        pool.down(key, stroke[0].x, stroke[0].y, stroke[0].t)
        decisions = []
        for p in stroke[1:]:
            pool.move(key, p.x, p.y, p.t)
            decisions += pool.advance_to(p.t)
        pool.up(key, stroke[-1].x, stroke[-1].y, stroke[-1].t)
        decisions += pool.flush()
        recogs = [d for d in decisions if d.kind == "recog"]
        assert len(recogs) == 1
        assert recogs[0].class_name == result.class_name
        assert recogs[0].points_seen == result.points_seen
        assert recogs[0].eager == result.eager
    # Now the analyzer's curve vs one computed from the direct results.
    records = [json.loads(line) for line in tracer.lines()]
    report = validate_report(analyze_records(records))
    curves = report["eagerness_curve"]
    expected: dict = {}
    for result in direct:
        expected.setdefault(result.class_name, []).append(
            result.fraction_seen
        )
    assert set(curves) == set(expected)
    for name, fractions in expected.items():
        counts = [0] * 10
        for e in fractions:
            slot = min(9, max(0, -(-e * 10 // 1) - 1))
            counts[int(slot)] += 1
        cumulative, running = [], 0
        for c in counts:
            running += c
            cumulative.append(round(running / len(fractions), 6))
        assert curves[name]["cumulative"] == cumulative
        assert curves[name]["count"] == len(fractions)
        assert curves[name]["mean"] == round(
            sum(fractions) / len(fractions), 6
        )


def test_load_trace_tolerates_blanks_and_flags_garbage(tmp_path):
    good = tmp_path / "ok.ndjson"
    good.write_text('{"rec": "event"}\n\n{"rec": "span"}\n')
    assert [r["rec"] for r in load_trace(str(good))] == ["event", "span"]
    bad = tmp_path / "bad.ndjson"
    bad.write_text('{"rec": "event"}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.ndjson:2"):
        load_trace(str(bad))


def test_empty_trace_yields_a_valid_empty_report():
    report = validate_report(analyze_records([]))
    assert report["schema"] == SCHEMA
    assert report["sessions"] == {
        "seen": 0,
        "decided": 0,
        "committed": 0,
        "evicted": {"idle": 0, "killed": 0},
        "errors": 0,
    }
    assert report["quality"] is None
    assert report["eagerness_curve"] is None
    assert report["metrics"] is None
    assert report["latency"]["collect_s"]["count"] == 0
    # And both renderers accept it.
    assert render_json(report)
    assert "# Trace analysis" in render_markdown(report)


def test_metrics_section_derivations():
    snapshot = {
        "counters": {
            "batch.rows": 200,
            "batch.fallbacks": 10,
            "pool.sessions_opened": 8,
            "pool.decisions.eager": 5,
            "pool.decisions.timeout": 1,
            "pool.decisions.up": 2,
        },
        "histograms": {},
    }
    report = analyze_records([], metrics=snapshot)
    derived = report["metrics"]["derived"]
    assert derived["fallback_rate"] == 0.05
    assert derived["decisions_per_session"] == 1.0
    # Zero-traffic snapshots don't divide by zero.
    empty = analyze_records([], metrics={"counters": {}, "histograms": {}})
    assert empty["metrics"]["derived"] == {
        "fallback_rate": None,
        "decisions_per_session": None,
    }


def _quality_record(i: int, **override) -> dict:
    record = {
        "rec": "quality",
        "session": f"s{i}",
        "class": "left",
        "reason": "unambiguous",
        "eager": True,
        "points": 5,
        "margin": 1.5,
        "d2": 2.6,
        "drift": 0.2,
        "outlier": False,
        "dwell": 0.05,
        "t": 0.1 * (i + 1),
        "total": 10,
        "eagerness": 0.5,
    }
    record.update(override)
    return record


def test_analyze_rejects_mixed_sampling_rates():
    """One rate per trace: mixed records cannot be aggregated soundly."""
    records = [
        _quality_record(0, sample_rate=0.5),
        _quality_record(1),  # unsampled (implicit rate 1.0)
    ]
    with pytest.raises(ValueError, match="mixes quality records sampled"):
        analyze_records(records)
    with pytest.raises(ValueError, match=r"outside \(0, 1\]"):
        analyze_records([_quality_record(0, sample_rate=0.0)])


def test_analyze_scales_up_sampled_traces():
    records = [_quality_record(i, sample_rate=0.25) for i in range(3)]
    report = validate_report(analyze_records(records))
    quality = report["quality"]
    assert quality["gestures"] == 3
    assert quality["sample_rate"] == 0.25
    # Horvitz-Thompson: each kept record stands for 1/rate gestures.
    assert quality["estimated_gestures"] == 12
    md = render_markdown(report)
    assert "Sampled at rate 0.25" in md
    assert "~12 gestures estimated fleet-wide" in md
    # Unsampled reports stay byte-compatible: neither key, no MD line.
    plain = validate_report(
        analyze_records([_quality_record(i) for i in range(3)])
    )
    assert "sample_rate" not in plain["quality"]
    assert "estimated_gestures" not in plain["quality"]
    assert "Sampled at rate" not in render_markdown(plain)


def test_cli_analyze_fails_cleanly_on_mixed_rate_trace(tmp_path):
    from repro.cli import main

    trace = tmp_path / "mixed.ndjson"
    trace.write_text(
        json.dumps(_quality_record(0, sample_rate=0.5))
        + "\n"
        + json.dumps(_quality_record(1))
        + "\n"
    )
    with pytest.raises(SystemExit, match="mixes quality records sampled"):
        main(["analyze", str(trace)])


def test_validate_report_rejects_malformed_reports():
    good = analyze_records([])
    with pytest.raises(ValueError, match="schema"):
        validate_report({**good, "schema": "bogus/9"})
    with pytest.raises(ValueError, match="sessions"):
        validate_report({k: v for k, v in good.items() if k != "sessions"})
    with pytest.raises(ValueError, match="missing section 'quality'"):
        validate_report({k: v for k, v in good.items() if k != "quality"})
    broken_curve = dict(good)
    broken_curve["eagerness_curve"] = {
        "x": {"count": 1, "mean": 0.5, "cumulative": [0.5] * 9}
    }
    with pytest.raises(ValueError, match="10 bins"):
        validate_report(broken_curve)
    stuck_curve = dict(good)
    stuck_curve["eagerness_curve"] = {
        "x": {"count": 1, "mean": 0.5, "cumulative": [0.9] * 10}
    }
    with pytest.raises(ValueError, match="end at 1.0"):
        validate_report(stuck_curve)
    assert validate_report(good) is good
