"""Property tests for the vectorized quality path and its sampling.

The tentpole claim of the always-on quality telemetry is *bit*
equality: the numbers produced from the :class:`FeatureBank`'s O(1)
``quality_state`` snapshots (assembled lazily at scrape time) are the
same IEEE-754 doubles as replaying the decided prefix through the
scalar :class:`IncrementalFeatures` path.  Hypothesis drives that claim
at three layers:

* bank level — ``quality_vector`` equals the scalar replay after
  *every* prefix of randomized strokes, including interleaved
  multi-slot ticks and sidecar-log growth;
* monitor level — a :class:`QualityMonitor` fed the pool's vectorized
  snapshots reports counters, histograms, drift, and trace records
  identical to one forced onto the replay path, across recognizers
  (masked included) and both pool modes;
* sampling — :func:`session_sampled` is a pure, monotone function of
  ``(seed, rate, key)``, so the sampled set is identical across
  re-runs, worker partitions, and process restarts, and the records a
  sampled monitor emits are byte-for-byte the unsampled run's records
  for exactly the sampled sessions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import IncrementalFeatures
from repro.geometry import Point
from repro.obs import (
    MetricsRegistry,
    PoolObserver,
    QualityMonitor,
    Tracer,
    session_sampled,
)
from repro.serve import generate_workload, run_load
from repro.serve.bank import FeatureBank
from repro.synth import eight_direction_templates, gdp_templates

# Integer grids produce exact duplicate points (zero-length segments)
# and collinear runs; the dt=0 choice produces untimed segments.  Both
# are the edge cases the scalar path guards with epsilon checks.
grid_strokes = st.lists(
    st.tuples(
        st.integers(min_value=-9, max_value=9),
        st.integers(min_value=-9, max_value=9),
        st.sampled_from([0.0, 0.004, 0.01, 0.05]),
    ),
    min_size=1,
    max_size=48,
)

float_strokes = st.lists(
    st.tuples(
        st.floats(min_value=-250.0, max_value=250.0, allow_nan=False),
        st.floats(min_value=-250.0, max_value=250.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    ),
    min_size=1,
    max_size=48,
)


def _materialize(raw) -> list[tuple[float, float, float]]:
    """(x, y, dt) steps -> (x, y, t) points with a running clock."""
    t = 0.0
    points = []
    for x, y, dt in raw:
        t += dt
        points.append((float(x) * 6.5 if isinstance(x, int) else x,
                       float(y) * 6.5 if isinstance(y, int) else y, t))
    return points


def _assert_prefix_identity(bank_cls, points) -> None:
    bank = bank_cls(3, quality=True)
    slot = bank.open_slot()
    slots = np.array([slot])
    inc = IncrementalFeatures()
    for x, y, t in points:
        bank.add_points(
            slots, np.array([x]), np.array([y]), np.array([t])
        )
        inc.add_point(Point(x, y, t))
        assert bank.quality_vector(slot).tobytes() == inc.vector.tobytes()


@settings(deadline=None, max_examples=30)
@given(raw=grid_strokes)
def test_bank_quality_vector_bit_identical_on_grid_strokes(raw):
    _assert_prefix_identity(FeatureBank, _materialize(raw))


@settings(deadline=None, max_examples=30)
@given(raw=float_strokes)
def test_bank_quality_vector_bit_identical_on_float_strokes(raw):
    _assert_prefix_identity(FeatureBank, _materialize(raw))


class _NarrowBank(FeatureBank):
    # Two columns force the sidecar log through several IndexError ->
    # double -> retry growth cycles on any stroke with >2 turns.
    _Q_LOG_WIDTH = 2


@settings(deadline=None, max_examples=20)
@given(raw=grid_strokes)
def test_sidecar_log_growth_preserves_bit_identity(raw):
    _assert_prefix_identity(_NarrowBank, _materialize(raw))


@settings(deadline=None, max_examples=15)
@given(
    raws=st.lists(grid_strokes, min_size=2, max_size=4),
)
def test_interleaved_slots_keep_independent_exact_state(raws):
    """Batched multi-slot ticks: each slot still matches its own replay.

    One tick folds one point into *several* slots at once (the fancy
    scatter under test); per-slot results must be indistinguishable
    from feeding each stroke alone.
    """
    strokes = [_materialize(raw) for raw in raws]
    bank = FeatureBank(len(strokes), quality=True)
    slots = [bank.open_slot() for _ in strokes]
    refs = [IncrementalFeatures() for _ in strokes]
    for k in range(max(len(s) for s in strokes)):
        active = [i for i, s in enumerate(strokes) if k < len(s)]
        bank.add_points(
            np.array([slots[i] for i in active]),
            np.array([strokes[i][k][0] for i in active]),
            np.array([strokes[i][k][1] for i in active]),
            np.array([strokes[i][k][2] for i in active]),
        )
        for i in active:
            refs[i].add_point(Point(*strokes[i][k]))
        for i in active:
            assert (
                bank.quality_vector(slots[i]).tobytes()
                == refs[i].vector.tobytes()
            )


# -- monitor level -----------------------------------------------------------


class _ReplayMonitor(QualityMonitor):
    """A monitor that refuses every precomputed vector: the reference."""

    def decided(self, points, decision, vector=None) -> None:
        super().decided(points, decision, None)


def _quality_view(quality, metrics) -> dict:
    snap = metrics.snapshot()
    return {
        "counters": {
            k: v for k, v in snap["counters"].items()
            if k.startswith("quality.")
        },
        "histograms": {
            k: v for k, v in snap["histograms"].items()
            if k.startswith("quality.")
        },
        "drift": quality.drift_scores(),
    }


def _run(recognizer, workload, monitor_cls, *, batched, tracer=None, **kw):
    metrics = MetricsRegistry()
    quality = monitor_cls(recognizer, metrics=metrics, tracer=tracer, **kw)
    observer = PoolObserver(metrics=metrics, tracer=tracer, quality=quality)
    run_load(
        recognizer, workload, batched=batched, collect=True, observer=observer
    )
    return quality, metrics


_TEMPLATES = {
    "directions_recognizer": eight_direction_templates,
    "gdp_recognizer": gdp_templates,
    "masked_recognizer": eight_direction_templates,
}


@pytest.mark.parametrize("fixture", sorted(_TEMPLATES))
@pytest.mark.parametrize("batched", [True, False])
def test_vectorized_monitor_bit_identical_to_forced_replay(
    request, fixture, batched
):
    """Snapshot-fed monitor == replay-fed monitor, per recognizer/mode."""
    recognizer = request.getfixturevalue(fixture)
    workload = generate_workload(
        _TEMPLATES[fixture](), clients=5, gestures_per_client=2, seed=29
    )
    q_vec, m_vec = _run(recognizer, workload, QualityMonitor, batched=batched)
    q_ref, m_ref = _run(recognizer, workload, _ReplayMonitor, batched=batched)
    view_vec = _quality_view(q_vec, m_vec)
    assert view_vec == _quality_view(q_ref, m_ref)
    assert view_vec["counters"].get("quality.decisions", 0) > 0


@settings(deadline=None, max_examples=6)
@given(
    params=st.tuples(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**16),
    )
)
def test_vectorized_equals_replay_with_tracer_attached(
    directions_recognizer, params
):
    """Eager (traced) path too: identical metrics AND trace records."""
    clients, gestures, seed = params
    workload = generate_workload(
        eight_direction_templates(),
        clients=clients,
        gestures_per_client=gestures,
        seed=seed,
    )
    views = {}
    traces = {}
    for cls in (QualityMonitor, _ReplayMonitor):
        tracer = Tracer()
        quality, metrics = _run(
            directions_recognizer, workload, cls, batched=True, tracer=tracer
        )
        views[cls] = _quality_view(quality, metrics)
        traces[cls] = [l for l in tracer.lines() if '"quality"' in l]
    assert views[QualityMonitor] == views[_ReplayMonitor]
    assert traces[QualityMonitor] == traces[_ReplayMonitor]
    assert traces[QualityMonitor], "workload produced no quality records"


# -- deterministic sampling --------------------------------------------------


sample_keys = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="\n"),
    min_size=0,
    max_size=24,
)


@settings(deadline=None, max_examples=60)
@given(
    key=sample_keys,
    seed=st.integers(min_value=0, max_value=2**32),
    r1=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    r2=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_session_sampled_is_pure_and_monotone(key, seed, r1, r2):
    lo, hi = sorted((r1, r2))
    assert session_sampled(key, lo, seed) == session_sampled(key, lo, seed)
    assert session_sampled(key, 1.0, seed) is True
    assert session_sampled(key, 0.0, seed) is False
    if session_sampled(key, lo, seed):  # growing the rate never evicts
        assert session_sampled(key, hi, seed)


@settings(deadline=None, max_examples=25)
@given(
    keys=st.lists(sample_keys, unique=True, max_size=60),
    seed=st.integers(min_value=0, max_value=2**32),
    rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    workers=st.integers(min_value=1, max_value=5),
)
def test_sampled_set_is_worker_partition_independent(
    keys, seed, rate, workers
):
    """Any sharding of the keys reproduces the fleet-wide sampled set.

    Membership depends only on ``(seed, rate, key)`` — no process
    state — so a resharded fleet, a respawned worker, or an offline
    replay all agree on which sessions carry quality numbers.
    """
    whole = {k for k in keys if session_sampled(k, rate, seed)}
    shards: list[set] = [set() for _ in range(workers)]
    for i, k in enumerate(keys):  # an arbitrary partition
        shards[i % workers].add(k)
    union: set = set()
    for shard in shards:
        union |= {k for k in shard if session_sampled(k, rate, seed)}
    assert union == whole


def test_monitor_scores_exactly_the_sampled_sessions(directions_recognizer):
    """sample=0.5: the sampled run's records are the unsampled run's
    records for precisely the ``session_sampled`` keys, byte-for-byte
    (plus the ``sample_rate`` stamp), and every decision is accounted
    either as scored or as sampled out."""
    workload = generate_workload(
        eight_direction_templates(), clients=9, gestures_per_client=2, seed=13
    )
    tracer = Tracer()
    _, m_full = _run(
        directions_recognizer, workload, QualityMonitor,
        batched=True, tracer=tracer,
    )
    full = {
        r["session"]: r
        for r in tracer.records
        if r.get("rec") == "quality"
    }
    total = m_full.snapshot()["counters"]["quality.decisions"]
    assert total == len(full) > 0

    runs = []
    for _ in range(2):
        tracer = Tracer()
        _, metrics = _run(
            directions_recognizer, workload, QualityMonitor,
            batched=True, tracer=tracer,
            sample=0.5, sample_seed=3,
        )
        runs.append((tracer.lines(), metrics.snapshot()["counters"]))
    assert runs[0] == runs[1]  # replay-stable, bit for bit

    lines, counters = runs[0]
    sampled = {
        r["session"]: r
        for r in (json.loads(l) for l in lines)
        if r.get("rec") == "quality"
    }
    expected = {k for k in full if session_sampled(k, 0.5, 3)}
    assert set(sampled) == expected
    assert 0 < len(sampled) < len(full)
    for key, record in sampled.items():
        assert record.pop("sample_rate") == 0.5
        assert record == full[key]  # sampling never changes the numbers
    assert counters["quality.decisions"] == len(sampled)
    assert counters["quality.sampled_out"] == total - len(sampled)


def test_sampling_never_changes_decisions(directions_recognizer):
    workload = generate_workload(
        eight_direction_templates(), clients=6, gestures_per_client=2, seed=41
    )
    plain = run_load(
        directions_recognizer, workload, batched=True, collect=True
    )
    metrics = MetricsRegistry()
    observer = PoolObserver(
        metrics=metrics,
        quality=QualityMonitor(
            directions_recognizer, metrics=metrics, sample=0.3, sample_seed=7
        ),
    )
    observed = run_load(
        directions_recognizer,
        workload,
        batched=True,
        collect=True,
        observer=observer,
    )
    assert observed.decision_log == plain.decision_log


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_sample_rate_validation(directions_recognizer, rate):
    with pytest.raises(ValueError, match="sample must be within"):
        QualityMonitor(directions_recognizer, sample=rate)
