"""The kinematic detectors against hand-built streams.

These pin the edge cases the config module documents: inclusive
thresholds (a velocity of exactly ``swipe_min_velocity`` fires, a
press of exactly ``hold_duration`` promotes), zero-duration holds,
single-point strokes, debounce windows, and the persistence of the
scroll axis lock.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modal import (
    HoldDetector,
    ModalityConfig,
    PairTracker,
    ScrollAxisLock,
    SwipeDetector,
    TapTracker,
    edge_of,
    quantize_direction,
)

CONFIG = ModalityConfig()


class TestQuantizeDirection:
    @pytest.mark.parametrize(
        "dx,dy,name",
        [
            (1.0, 0.0, "e"), (0.0, -1.0, "n"), (-1.0, 0.0, "w"),
            (0.0, 1.0, "s"), (1.0, -1.0, "ne"), (-1.0, -1.0, "nw"),
            (-1.0, 1.0, "sw"), (1.0, 1.0, "se"),
        ],
    )
    def test_compass_8(self, dx, dy, name):
        assert quantize_direction(dx, dy, 8) == name

    def test_exact_diagonals_round_counterclockwise_in_4(self):
        # A boundary displacement resolves toward increasing angle, for
        # every diagonal — not just the even-index ones (the half-up
        # rounding rule, immune to banker's-rounding parity).
        assert quantize_direction(1.0, -1.0, 4) == "n"   # ne -> n
        assert quantize_direction(-1.0, -1.0, 4) == "w"  # nw -> w
        assert quantize_direction(-1.0, 1.0, 4) == "s"   # sw -> s
        assert quantize_direction(1.0, 1.0, 4) == "e"    # se -> e

    def test_rejects_other_direction_counts(self):
        with pytest.raises(ValueError):
            quantize_direction(1.0, 0.0, 6)

    @given(
        angle=st.floats(min_value=-math.pi, max_value=math.pi),
        directions=st.sampled_from([4, 8]),
    )
    def test_total_over_the_circle(self, angle, directions):
        name = quantize_direction(
            math.cos(angle), -math.sin(angle), directions
        )
        assert name in ("e", "ne", "n", "nw", "w", "sw", "s", "se")


class TestEdgeOf:
    def test_interior_is_none(self):
        assert edge_of(50.0, 50.0, (100.0, 100.0), 16.0) is None

    @pytest.mark.parametrize(
        "x,y,edge",
        [(5.0, 50.0, "w"), (95.0, 50.0, "e"), (50.0, 5.0, "n"), (50.0, 95.0, "s")],
    )
    def test_each_edge(self, x, y, edge):
        assert edge_of(x, y, (100.0, 100.0), 16.0) == edge

    def test_corner_resolves_to_nearest_edge(self):
        assert edge_of(3.0, 10.0, (100.0, 100.0), 16.0) == "w"
        assert edge_of(10.0, 3.0, (100.0, 100.0), 16.0) == "n"

    def test_corner_tie_goes_horizontal_first(self):
        assert edge_of(5.0, 5.0, (100.0, 100.0), 16.0) == "w"


class TestHoldDetector:
    def test_exact_duration_is_inclusive(self):
        hold = HoldDetector(CONFIG, 0.0, 0.0, 1.0)
        assert not hold.is_hold(1.0 + CONFIG.hold_duration - 1e-9)
        assert hold.is_hold(1.0 + CONFIG.hold_duration)

    def test_zero_duration_holds_immediately(self):
        config = ModalityConfig(hold_duration=0.0)
        hold = HoldDetector(config, 0.0, 0.0, 2.0)
        assert hold.confirm_time() == 2.0
        assert hold.is_hold(2.0)

    def test_drift_boundary_is_inclusive_and_sticky(self):
        hold = HoldDetector(CONFIG, 0.0, 0.0, 0.0)
        hold.move(CONFIG.hold_max_drift, 0.0)
        assert hold.within_drift
        # Drift is a running max: returning to the anchor cannot
        # un-disqualify a press that wandered too far.
        hold.move(CONFIG.hold_max_drift + 0.1, 0.0)
        hold.move(0.0, 0.0)
        assert not hold.within_drift
        assert hold.max_drift == pytest.approx(CONFIG.hold_max_drift + 0.1)


class TestTapTracker:
    def test_single_tap_fires_at_up(self):
        taps = TapTracker(CONFIG)
        assert taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0) == "tap"

    def test_double_tap_within_gap_and_radius(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        down = 0.1 + CONFIG.double_tap_gap  # exactly at the gap: inclusive
        assert (
            taps.stroke_end(CONFIG.double_tap_radius, 0.0, down, down + 0.1, 1.0)
            == "double_tap"
        )

    def test_double_tap_closes_the_chain(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        taps.stroke_end(0.0, 0.0, 0.2, 0.3, 1.0)
        # A third tap starts a fresh chain, not a triple.
        assert taps.stroke_end(0.0, 0.0, 0.4, 0.5, 1.0) == "tap"

    def test_late_second_tap_is_just_a_tap(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        down = 0.1 + CONFIG.double_tap_gap + 0.01
        assert taps.stroke_end(0.0, 0.0, down, down + 0.1, 1.0) == "tap"

    def test_distant_second_tap_is_just_a_tap(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        assert (
            taps.stroke_end(CONFIG.double_tap_radius + 1.0, 0.0, 0.2, 0.3, 1.0)
            == "tap"
        )

    def test_bounce_is_swallowed_and_the_armed_tap_survives(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        bounce_down = 0.1 + CONFIG.debounce / 2.0
        assert taps.stroke_end(0.0, 0.0, bounce_down, bounce_down, 1.0) is None
        # The original tap is still armed: a real second tap doubles.
        assert taps.stroke_end(0.0, 0.0, 0.3, 0.35, 1.0) == "double_tap"

    def test_slow_or_drifting_stroke_breaks_the_chain(self):
        taps = TapTracker(CONFIG)
        taps.stroke_end(0.0, 0.0, 0.0, 0.1, 1.0)
        assert (
            taps.stroke_end(0.0, 0.0, 0.2, 0.2 + CONFIG.tap_max_duration + 0.1, 1.0)
            is None
        )
        assert taps.stroke_end(0.0, 0.0, 0.5, 0.6, 1.0) == "tap"  # fresh chain
        assert (
            taps.stroke_end(0.0, 0.0, 0.8, 0.9, CONFIG.tap_max_drift + 1.0)
            is None
        )

    def test_zero_duration_stroke_is_a_tap(self):
        # down and up on the same tick: degenerate but legal.
        assert TapTracker(CONFIG).stroke_end(0.0, 0.0, 1.0, 1.0, 0.0) == "tap"


class TestScrollAxisLock:
    def test_locks_dominant_axis_at_exact_travel(self):
        lock = ScrollAxisLock(CONFIG, 0.0, 0.0)
        assert lock.feed(0.0, CONFIG.scroll_min_travel / 2.0) is None
        axis, delta = lock.feed(0.0, CONFIG.scroll_min_travel)
        assert axis == "v"
        assert delta == pytest.approx(CONFIG.scroll_min_travel / 2.0)

    def test_lock_is_persistent(self):
        lock = ScrollAxisLock(CONFIG, 0.0, 0.0)
        lock.feed(0.0, 30.0)
        assert lock.axis == "v"
        # A hard horizontal turn still scrolls vertically (delta 0).
        axis, delta = lock.feed(500.0, 30.0)
        assert (axis, delta) == ("v", 0.0)
        assert lock.axis == "v"

    def test_diagonal_travel_does_not_lock(self):
        lock = ScrollAxisLock(CONFIG, 0.0, 0.0)
        # Equal travel on both axes fails the 1.5x dominance ratio.
        assert lock.feed(20.0, 20.0) is None
        assert lock.axis is None

    def test_horizontal_lock(self):
        lock = ScrollAxisLock(CONFIG, 0.0, 0.0)
        axis, delta = lock.feed(-30.0, 0.0)
        assert (axis, delta) == ("h", -30.0)


class TestSwipeDetector:
    def _feed_line(self, detector, speed, n=6, dt=0.01):
        hit = None
        for i in range(1, n + 1):
            hit = hit or detector.feed(speed * dt * i, 0.0, dt * i)
        return hit

    def test_exact_threshold_velocity_fires(self):
        config = ModalityConfig(swipe_min_travel=10.0)
        hit = self._feed_line(SwipeDetector(config), config.swipe_min_velocity)
        assert hit is not None
        assert hit.direction == "e"
        assert hit.velocity == pytest.approx(config.swipe_min_velocity)
        assert hit.linearity == pytest.approx(1.0)

    def test_below_threshold_never_fires(self):
        config = ModalityConfig(swipe_min_travel=10.0)
        hit = self._feed_line(
            SwipeDetector(config), config.swipe_min_velocity - 1.0, n=30
        )
        assert hit is None

    def test_single_point_stroke_cannot_fire(self):
        detector = SwipeDetector(CONFIG)
        assert detector.feed(0.0, 0.0, 0.0) is None

    def test_simultaneous_points_cannot_fire(self):
        # Two samples at the same instant: no time span, no velocity.
        detector = SwipeDetector(CONFIG)
        detector.feed(0.0, 0.0, 0.0)
        assert detector.feed(1000.0, 0.0, 0.0) is None

    def test_curved_path_fails_linearity(self):
        config = ModalityConfig(swipe_min_travel=10.0)
        detector = SwipeDetector(config)
        detector.feed(0.0, 0.0, 0.0)
        detector.feed(60.0, 0.0, 0.01)
        # Fast but a right-angle dogleg: net/path ~ 0.7 < 0.9.
        hit = detector.feed(60.0, 60.0, 0.02)
        assert hit is None

    def test_window_slides_old_samples_out(self):
        config = ModalityConfig(swipe_min_travel=10.0)
        detector = SwipeDetector(config)
        # A slow leading segment, then a genuine flick: the stale slow
        # samples must leave the window instead of diluting velocity.
        t = 0.0
        for i in range(10):
            t = 0.1 * i
            detector.feed(float(i), 0.0, t)  # 10 px/s amble
        hit = None
        for i in range(1, 15):
            hit = hit or detector.feed(9.0 + 20.0 * i, 0.0, t + 0.01 * i)
        assert hit is not None
        assert hit.velocity >= config.swipe_min_velocity


class TestPairTracker:
    def test_pinch_in_and_out(self):
        tracker = PairTracker(CONFIG, -50.0, 0.0, 50.0, 0.0)
        assert tracker.classify() is None
        tracker.update(-40.0, 0.0, 40.0, 0.0)  # gap 100 -> 80: not yet
        assert tracker.classify() is None
        tracker.update(-30.0, 0.0, 30.0, 0.0)  # gap change 40 >= 24
        assert tracker.classify() == "pinch_in"
        assert tracker.gap_change == pytest.approx(-40.0)

        out = PairTracker(CONFIG, -50.0, 0.0, 50.0, 0.0)
        out.update(-70.0, 0.0, 70.0, 0.0)
        assert out.classify() == "pinch_out"

    def test_rotate_accumulates_turn(self):
        tracker = PairTracker(CONFIG, 0.0, -50.0, 0.0, 50.0)
        # Rotate the pair segment 0.15 then 0.15 rad: classifies on the
        # second step, with the gap untouched.
        for angle in (0.15, 0.3):
            ax = 50.0 * math.sin(angle)
            ay = -50.0 * math.cos(angle)
            tracker.update(ax, ay, -ax, -ay)
        assert tracker.classify() == "rotate"
        assert abs(tracker.turn) >= CONFIG.rotate_min_angle
        assert tracker.gap_change == pytest.approx(0.0, abs=1e-9)

    def test_commitment_is_sticky(self):
        tracker = PairTracker(CONFIG, -50.0, 0.0, 50.0, 0.0)
        tracker.update(-30.0, 0.0, 30.0, 0.0)
        assert tracker.classify() == "pinch_in"
        # A later dramatic rotation cannot re-name the manipulation.
        tracker.update(0.0, -30.0, 0.0, 30.0)
        assert tracker.classify() == "pinch_in"
