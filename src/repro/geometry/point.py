"""Timed two-dimensional points.

The paper defines a gesture as a sequence of points ``g_p = (x_p, y_p, t_p)``
(section 4.1): a mouse point ``(x, y)`` that arrived at time ``t``.  This
module provides the :class:`Point` value type used throughout the library,
plus the small amount of planar arithmetic the recognizer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point", "distance", "angle_between", "midpoint"]


@dataclass(frozen=True)
class Point:
    """An immutable mouse point ``(x, y)`` stamped with arrival time ``t``.

    Time is in seconds.  Points compare by value, so strokes built from the
    same coordinates are equal, which the test-suite and dataset round-trip
    code rely on.
    """

    x: float
    y: float
    t: float = 0.0

    def translated(self, dx: float, dy: float) -> "Point":
        """Return this point moved by ``(dx, dy)``; time is preserved."""
        return Point(self.x + dx, self.y + dy, self.t)

    def scaled(self, sx: float, sy: float | None = None) -> "Point":
        """Return this point scaled about the origin; time is preserved."""
        if sy is None:
            sy = sx
        return Point(self.x * sx, self.y * sy, self.t)

    def rotated(self, theta: float, cx: float = 0.0, cy: float = 0.0) -> "Point":
        """Return this point rotated by ``theta`` radians about ``(cx, cy)``."""
        c, s = math.cos(theta), math.sin(theta)
        dx, dy = self.x - cx, self.y - cy
        return Point(cx + c * dx - s * dy, cy + s * dx + c * dy, self.t)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` (time is ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float, float]:
        """Return ``(x, y, t)``."""
        return (self.x, self.y, self.t)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (time ignored)."""
    return a.distance_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """Spatial midpoint of ``a`` and ``b``; time is averaged as well."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0, (a.t + b.t) / 2.0)


def angle_between(a: Point, b: Point) -> float:
    """Direction of the vector from ``a`` to ``b`` in radians.

    Returns 0.0 for coincident points rather than raising, because
    degenerate zero-length segments occur in real mouse traces (the mouse
    reports the same position twice) and must not crash feature extraction.
    """
    dx, dy = b.x - a.x, b.y - a.y
    if dx == 0.0 and dy == 0.0:
        return 0.0
    return math.atan2(dy, dx)
