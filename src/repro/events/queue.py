"""The event queue: time-ordered delivery of mouse events and timers.

This is the reproduction's stand-in for the X event loop GRANDMA ran on.
Producers post :class:`~repro.events.MouseEvent` objects at absolute
times; consumers (the GRANDMA dispatcher) receive them in time order.
Handlers may schedule *timers* — the mechanism behind the paper's
"timeout indicating that the user has not moved the mouse for 200
milliseconds" — and cancel them when a later event makes them moot.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from .clock import VirtualClock
from .event import MouseEvent, TimerEvent

__all__ = ["EventQueue"]


class EventQueue:
    """A deterministic, virtual-time event loop."""

    def __init__(self, clock: VirtualClock | None = None):
        self.clock = clock or VirtualClock()
        self._heap: list[tuple[float, int, object]] = []
        self._sequence = itertools.count()
        self._cancelled: set[int] = set()
        self._timer_callbacks: dict[int, Callable[[TimerEvent], None]] = {}

    def post(self, event: MouseEvent) -> None:
        """Enqueue a mouse event for delivery at its own timestamp.

        Events may be posted out of order; delivery is always in time
        order (ties break by posting order).
        """
        heapq.heappush(self._heap, (event.t, next(self._sequence), event))

    def post_all(self, events: list[MouseEvent]) -> None:
        for event in events:
            self.post(event)

    def schedule_timer(
        self, delay: float, callback: Callable[[TimerEvent], None]
    ) -> int:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns a token usable with :meth:`cancel_timer`.
        """
        if delay < 0.0:
            raise ValueError("cannot schedule a timer in the past")
        token = next(self._sequence)
        fire_at = self.clock.now + delay
        self._timer_callbacks[token] = callback
        heapq.heappush(
            self._heap, (fire_at, token, TimerEvent(token=token, t=fire_at))
        )
        return token

    def cancel_timer(self, token: int) -> bool:
        """Cancel a pending timer; returns False if it already fired."""
        if token in self._timer_callbacks:
            del self._timer_callbacks[token]
            self._cancelled.add(token)
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of undelivered entries (including cancelled timers)."""
        return len(self._heap)

    def run(self, deliver: Callable[[MouseEvent], None]) -> int:
        """Drain the queue, advancing the clock to each entry's time.

        Mouse events go to ``deliver``; timer events go to the callback
        they were scheduled with.  Handlers may post new events or timers
        while the queue runs — a timer scheduled during delivery of an
        event at time ``t`` fires at ``t + delay``, exactly like a real
        event loop.

        Returns:
            The number of mouse events delivered.
        """
        delivered = 0
        while self._heap:
            fire_at, token, item = heapq.heappop(self._heap)
            self.clock.advance_to(fire_at)
            if isinstance(item, TimerEvent):
                if token in self._cancelled:
                    self._cancelled.discard(token)
                    continue
                callback = self._timer_callbacks.pop(item.token, None)
                if callback is not None:
                    callback(item)
            else:
                deliver(item)
                delivered += 1
        return delivered
