"""Scale-out serving: a router, a supervisor, and N worker processes.

The single-process :class:`~repro.serve.GestureServer` is CPU-bound on
one core.  This package shards it without changing its meaning:

* :mod:`~repro.cluster.ring` — consistent hashing of session keys onto
  shards, stable across processes and restarts;
* :mod:`~repro.cluster.worker` — one ``GestureServer`` subprocess per
  shard, speaking the unmodified serve protocol;
* :mod:`~repro.cluster.supervisor` — spawn, heartbeat-watch, restart
  with exponential backoff, retire;
* :mod:`~repro.cluster.journal` — per-session op journals with lazy
  clock markers, the router's crash-recovery ground truth;
* :mod:`~repro.cluster.router` — the single client-facing address:
  sticky routing, tick/sweep broadcast, journal replay on worker
  restart (and, re-aimed at planned moves, *live session migration*),
  fleet-wide ``stats`` merging;
* :mod:`~repro.cluster.elastic` — :class:`Autoscaler`, the pure
  watermark/hysteresis decision core behind ``--autoscale``;
* :mod:`~repro.cluster.harness` — :class:`Cluster` (all of the above as
  one object: drain-by-migration, ``join``, ``scale_to``) and the
  deterministic driver/reference pair behind the invariance tests and
  ``benchmarks/bench_cluster.py`` / ``benchmarks/bench_elastic.py``.

The load-bearing claim, pinned by ``tests/cluster/``: for any worker
count, across any schedule of crashes, joins, drains, scales, and
migrations, the per-session reply streams are byte-identical to a
single :class:`~repro.serve.SessionPool` run over the same input order.
"""

from .elastic import Autoscaler, quantile_from_buckets
from .harness import Cluster, drive_cluster, reference_lines, workload_ticks
from .journal import SessionRecord, replay_lines
from .ring import HashRing
from .router import Router
from .supervisor import Supervisor, WorkerHandle

__all__ = [
    "Autoscaler",
    "Cluster",
    "HashRing",
    "Router",
    "SessionRecord",
    "Supervisor",
    "WorkerHandle",
    "drive_cluster",
    "quantile_from_buckets",
    "reference_lines",
    "replay_lines",
    "workload_ticks",
]
