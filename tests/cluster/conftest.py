"""Shared fixtures for the cluster tests.

The recognizer is trained once per session from the checked-in GDP
strokes (the same artifact the golden-trace tests pin), then saved to a
temp file for the worker subprocesses to load — workers and the
single-pool reference run the *identical* model, which the byte-identity
tests require.
"""

from __future__ import annotations

import pytest

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.serve import generate_workload
from repro.synth import gdp_templates

from pathlib import Path

DATA = Path(__file__).parent.parent / "obs" / "data" / "gdp_strokes.json"


@pytest.fixture(scope="session")
def cluster_recognizer():
    gesture_set = GestureSet.load(DATA)
    return train_eager_recognizer(gesture_set.strokes_by_class()).recognizer


@pytest.fixture(scope="session")
def recognizer_path(cluster_recognizer, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("cluster") / "recognizer.json"
    cluster_recognizer.save(path)
    return str(path)


@pytest.fixture(scope="session")
def cluster_workload() -> list:
    # 10 clients x 2 gestures, dwells included, so eager, timeout and
    # mouse-up decision paths all cross the cluster.
    return generate_workload(
        gdp_templates(), clients=10, gestures_per_client=2, seed=11
    )
