"""Figure 10 — the eager recognizer on GDP's eleven gesture classes.

Paper numbers (USENIX 1991, §5):

* full classifier:  99.7% correct
* eager recognizer: 93.5% correct
* points examined before classification: 60.5% on average

Also reproduced: the §5 note that "the GDP gesture set was slightly
altered to increase eagerness: the group gesture was trained clockwise
because when it was counterclockwise it prevented the copy gesture from
ever being eagerly recognized" — the counterclockwise-group ablation
below measures exactly that interaction.
"""

import math

from conftest import (
    TEST_PARAMS,
    TRAIN_PER_CLASS,
    train_and_evaluate,
    write_report,
)

from repro.evaluate import figure9_grid, summary_row
from repro.synth import GestureTemplate, arc_waypoints, gdp_templates


def test_fig10_shape_and_report(fig10_experiment):
    report, result, test_set = fig10_experiment
    lines = [
        "Figure 10 reproduction: the eleven GDP gesture classes",
        "paper:   full 99.7%   eager 93.5%   seen 60.5%",
        summary_row("reproduction", result),
        "",
        "Per-example grid (seen/total; E = eager error, F = full error):",
        figure9_grid(result, per_row=5, max_rows_per_class=1),
        "",
        "Eager confusion matrix:",
        result.eager_confusion.to_table(),
    ]
    write_report("fig10_gdp_gestures", "\n".join(lines))

    assert result.full_accuracy >= result.eager_accuracy
    assert result.full_accuracy > 0.95
    assert result.eager_accuracy > 0.85
    assert result.eagerness.mean_fraction_seen < 0.95


def test_fig10_group_direction_interaction():
    """Counterclockwise group should depress copy's eagerness (§5)."""
    templates_ccw = gdp_templates()
    ccw_circle = arc_waypoints(
        cx=0.5,
        cy=0.5,
        radius=0.5,
        start_angle=-math.pi / 2,
        sweep=-2 * math.pi * 0.95,
        steps=30,
    )
    templates_ccw["group"] = GestureTemplate(
        name="group", waypoints=tuple(ccw_circle)
    )

    def copy_eagerness(templates, train_seed, test_seed):
        _, result, _ = train_and_evaluate(
            templates, train_seed=train_seed, test_seed=test_seed
        )
        fractions = [
            o.points_seen / o.total_points
            for o in result.outcomes
            if o.class_name == "copy"
        ]
        return sum(fractions) / len(fractions)

    cw = copy_eagerness(gdp_templates(), 303, 404)
    ccw = copy_eagerness(templates_ccw, 303, 404)
    write_report(
        "fig10_group_direction_ablation",
        "Fraction of copy gestures examined before classification\n"
        f"group trained clockwise (paper's fix): {cw:6.1%}\n"
        f"group trained counterclockwise:        {ccw:6.1%}\n"
        "(the paper: counterclockwise group prevented copy from ever "
        "being eagerly recognized)",
    )
    # The counterclockwise group makes copy markedly less eager.
    assert ccw > cw


def test_fig10_recognition_throughput(fig10_experiment, benchmark):
    report, result, test_set = fig10_experiment
    strokes = [example.stroke for example in test_set][:40]
    labels = benchmark(
        lambda: [report.recognizer.recognize(s).class_name for s in strokes]
    )
    assert len(labels) == len(strokes)


def test_fig10_training_time(benchmark):
    from repro.eager import train_eager_recognizer
    from repro.synth import GestureGenerator

    train = GestureGenerator(gdp_templates(), seed=21).generate_strokes(
        TRAIN_PER_CLASS
    )
    report = benchmark(lambda: train_eager_recognizer(train))
    assert report.recognizer is not None
