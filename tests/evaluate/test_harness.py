"""Unit tests for the experiment harness (the §5 protocol)."""

import pytest

from repro.datasets import GestureSet
from repro.evaluate import evaluate_recognizer, run_experiment
from repro.synth import GestureGenerator, eight_direction_templates


class TestEvaluateRecognizer:
    def test_outcome_per_example(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        assert len(result.outcomes) == len(directions_test_set)

    def test_confusion_totals_match(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        assert result.eager_confusion.total == len(directions_test_set)
        assert result.full_confusion.total == len(directions_test_set)

    def test_accuracies_reasonable(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        # The paper's shape: full >= eager, both high.
        assert result.full_accuracy >= result.eager_accuracy - 0.02
        assert result.eager_accuracy > 0.8
        assert result.full_accuracy > 0.9

    def test_eagerness_between_oracle_and_one(
        self, directions_recognizer, directions_test_set
    ):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        seen = result.eagerness.mean_fraction_seen
        oracle = result.eagerness.mean_oracle_fraction
        assert 0.0 < oracle < seen < 1.0

    def test_outcome_flags(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        for outcome in result.outcomes:
            assert outcome.eager_wrong == (
                outcome.eager_prediction != outcome.class_name
            )
            assert outcome.full_wrong == (
                outcome.full_prediction != outcome.class_name
            )

    def test_caption_format(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        outcome = result.outcomes[0]
        caption = outcome.caption()
        # "oracle,seen/total" like the paper's "7,8/11".
        assert f"{outcome.oracle_points}," in caption
        assert f"/{outcome.total_points}" in caption

    def test_summary_text(self, directions_recognizer, directions_test_set):
        result = evaluate_recognizer(directions_recognizer, directions_test_set)
        summary = result.summary()
        assert "full classifier accuracy" in summary
        assert "eager recognizer accuracy" in summary
        assert "oracle" in summary


class TestRunExperiment:
    def test_protocol_end_to_end(self):
        generator = GestureGenerator(eight_direction_templates(), seed=4242)
        dataset = GestureSet.from_generator("dirs", generator, 15)
        result, recognizer = run_experiment(dataset, train_per_class=10)
        # 5 test examples per class remain.
        assert result.eager_confusion.total == 8 * 5
        assert recognizer.class_names
        assert result.eager_accuracy > 0.7

    def test_custom_config_passed_through(self):
        from repro.eager import EagerTrainingConfig

        generator = GestureGenerator(eight_direction_templates(), seed=777)
        dataset = GestureSet.from_generator("dirs", generator, 12)
        result, recognizer = run_experiment(
            dataset,
            train_per_class=10,
            config=EagerTrainingConfig(ambiguity_bias_ratio=50.0),
        )
        # A huge ambiguity bias makes the recognizer very conservative:
        # it examines more of each gesture.
        baseline, _ = run_experiment(dataset, train_per_class=10)
        assert (
            result.eagerness.mean_fraction_seen
            >= baseline.eagerness.mean_fraction_seen - 1e-9
        )
