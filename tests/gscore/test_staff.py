"""Unit tests for the staff model."""

import pytest

from repro.gscore import DURATION_BEATS, DURATIONS, Note, Staff


@pytest.fixture
def staff():
    return Staff(origin_x=40.0, origin_y=60.0, line_gap=16.0, beat_width=60.0)


class TestNote:
    def test_duration_validation(self):
        with pytest.raises(ValueError):
            Note(step=0, beat=0.0, duration="whole")

    def test_beats(self):
        assert Note(0, 0.0, "quarter").beats == 1.0
        assert Note(0, 0.0, "sixtyfourth").beats == 0.0625

    def test_pitch_names(self):
        assert Note(0, 0.0, "quarter").pitch_name == "E4"
        assert Note(4, 0.0, "quarter").pitch_name == "B4"
        assert Note(11, 0.0, "quarter").pitch_name == "B5"

    def test_durations_cover_figure8(self):
        assert set(DURATIONS) == set(DURATION_BEATS)
        assert len(DURATIONS) == 5


class TestGeometry:
    def test_bottom_line_is_step_zero(self, staff):
        assert staff.step_to_y(0) == pytest.approx(60.0 + 4 * 16.0)

    def test_steps_are_half_gaps(self, staff):
        assert staff.step_to_y(0) - staff.step_to_y(2) == pytest.approx(16.0)
        assert staff.step_to_y(0) - staff.step_to_y(1) == pytest.approx(8.0)

    def test_beat_to_x(self, staff):
        assert staff.beat_to_x(0.0) == 40.0
        assert staff.beat_to_x(2.0) == 160.0


class TestSnapping:
    def test_snap_step_round_trip(self, staff):
        for step in range(12):
            assert staff.snap_step(staff.step_to_y(step)) == step

    def test_snap_step_clamps(self, staff):
        assert staff.snap_step(1e6) == 0
        assert staff.snap_step(-1e6) == 11

    def test_snap_beat_grid(self, staff):
        assert staff.snap_beat(staff.beat_to_x(1.13)) == pytest.approx(1.25)
        assert staff.snap_beat(staff.beat_to_x(1.1)) == pytest.approx(1.0)

    def test_snap_beat_clamps(self, staff):
        assert staff.snap_beat(-1e6) == 0.0
        assert staff.snap_beat(1e6) == staff.beats


class TestNotesCollection:
    def test_add_and_order(self, staff):
        late = staff.add_note(Note(3, 4.0, "quarter"))
        early = staff.add_note(Note(5, 1.0, "eighth"))
        assert staff.notes == (early, late)

    def test_remove(self, staff):
        note = staff.add_note(Note(0, 0.0, "quarter"))
        assert staff.remove_note(note)
        assert not staff.remove_note(note)
        assert staff.notes == ()

    def test_note_at_hit(self, staff):
        note = staff.add_note(Note(4, 2.0, "quarter"))
        x, y = staff.beat_to_x(2.0), staff.step_to_y(4)
        assert staff.note_at(x + 3, y - 3) is note

    def test_note_at_miss(self, staff):
        staff.add_note(Note(4, 2.0, "quarter"))
        assert staff.note_at(staff.beat_to_x(6.0), staff.step_to_y(4)) is None

    def test_note_at_picks_nearest(self, staff):
        near = staff.add_note(Note(4, 2.0, "quarter"))
        staff.add_note(Note(4, 2.25, "eighth"))
        x = staff.beat_to_x(2.02)
        assert staff.note_at(x, staff.step_to_y(4)) is near

    def test_mutations_notify(self, staff):
        seen = []
        staff.add_observer(seen.append)
        note = staff.add_note(Note(0, 0.0, "quarter"))
        staff.remove_note(note)
        staff.clear()
        assert len(seen) == 3
