"""ModalityConfig validation: constructed means usable, always.

Hypothesis drives both directions — any in-range combination
constructs and round-trips losslessly; any single out-of-range field
is rejected at construction, so the detectors never see a half-valid
config.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.modal import ModalityConfig

_POSITIVE = (
    "hold_max_drift", "tap_max_drift", "tap_max_duration",
    "double_tap_gap", "double_tap_radius", "scroll_min_travel",
    "swipe_window", "swipe_min_travel", "swipe_min_velocity",
    "pinch_min_travel", "rotate_min_angle",
)
_NON_NEGATIVE = ("hold_duration", "debounce", "edge_margin")


def _finite(min_value, max_value):
    return st.floats(
        min_value=min_value, max_value=max_value,
        allow_nan=False, allow_infinity=False,
    )


@st.composite
def valid_configs(draw):
    kwargs = {name: draw(_finite(0.001, 1e4)) for name in _POSITIVE}
    kwargs.update({name: draw(_finite(0.0, 1e4)) for name in _NON_NEGATIVE})
    kwargs["swipe_min_linearity"] = draw(_finite(0.001, 1.0))
    kwargs["scroll_axis_ratio"] = draw(_finite(1.0, 100.0))
    kwargs["swipe_directions"] = draw(st.sampled_from([4, 8]))
    # The one cross-field constraint: debounce < double_tap_gap.
    kwargs["debounce"] = min(
        kwargs["debounce"], kwargs["double_tap_gap"] / 2.0
    )
    return kwargs


@given(kwargs=valid_configs())
def test_valid_configs_construct_and_round_trip(kwargs):
    config = ModalityConfig(**kwargs)
    assert ModalityConfig.from_dict(config.to_dict()) == config


@given(kwargs=valid_configs(), data=st.data())
def test_any_nonpositive_threshold_is_rejected(kwargs, data):
    name = data.draw(st.sampled_from(_POSITIVE))
    kwargs[name] = data.draw(st.sampled_from([0.0, -1.0, -0.001]))
    with pytest.raises(ValueError, match=name):
        ModalityConfig(**kwargs)


@given(kwargs=valid_configs(), data=st.data())
def test_negative_durations_are_rejected(kwargs, data):
    name = data.draw(st.sampled_from(_NON_NEGATIVE))
    kwargs[name] = -0.01
    if name == "debounce":
        with pytest.raises(ValueError):
            ModalityConfig(**kwargs)
    else:
        with pytest.raises(ValueError, match=name):
            ModalityConfig(**kwargs)


def test_zero_hold_duration_is_legal():
    # The degenerate hold: promote at the first motionless timeout.
    assert ModalityConfig(hold_duration=0.0).hold_duration == 0.0


@pytest.mark.parametrize("linearity", [0.0, -0.5, 1.0001, 2.0])
def test_linearity_bounds(linearity):
    with pytest.raises(ValueError, match="swipe_min_linearity"):
        ModalityConfig(swipe_min_linearity=linearity)


@pytest.mark.parametrize("directions", [0, 1, 3, 6, 16, -8])
def test_directions_must_be_4_or_8(directions):
    with pytest.raises(ValueError, match="swipe_directions"):
        ModalityConfig(swipe_directions=directions)


def test_axis_ratio_floor():
    with pytest.raises(ValueError, match="scroll_axis_ratio"):
        ModalityConfig(scroll_axis_ratio=0.99)
    assert ModalityConfig(scroll_axis_ratio=1.0).scroll_axis_ratio == 1.0


def test_debounce_must_leave_room_for_a_second_tap():
    with pytest.raises(ValueError, match="debounce"):
        ModalityConfig(debounce=0.35, double_tap_gap=0.35)


def test_unknown_keys_are_an_error():
    with pytest.raises(ValueError, match="hold_durration"):
        ModalityConfig.from_dict({"hold_durration": 0.5})


def test_load_validates_and_rejects_non_objects(tmp_path):
    path = tmp_path / "modal.json"
    path.write_text(json.dumps({"hold_duration": 0.5, "debounce": 0.01}))
    config = ModalityConfig.load(str(path))
    assert config.hold_duration == 0.5
    assert config.swipe_directions == 8  # defaults fill the rest

    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        ModalityConfig.load(str(path))

    path.write_text(json.dumps({"hold_duration": -1.0}))
    with pytest.raises(ValueError, match="hold_duration"):
        ModalityConfig.load(str(path))


def test_with_overrides_revalidates():
    config = ModalityConfig()
    assert config.with_overrides(swipe_directions=4).swipe_directions == 4
    with pytest.raises(ValueError):
        config.with_overrides(swipe_min_velocity=-1.0)
    # The original is frozen and untouched.
    assert config.swipe_directions == 8
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.swipe_directions = 4
