"""Integration-style unit tests: GDP driven by performed gestures.

Each test performs a synthetic gesture (press, moves, dwell/eager
transition, manipulation, release) against a live GDP app and asserts
the figure-3 semantics: which parameters were fixed at recognition and
which were manipulated.
"""

import pytest

from repro.events import perform_gesture
from repro.gdp import (
    EllipseShape,
    GDPApp,
    GroupShape,
    LineShape,
    RectShape,
    TextShape,
)
from repro.geometry import Stroke
from repro.synth import GestureGenerator, gdp_templates


@pytest.fixture(scope="module")
def app_factory(gdp_recognizer):
    def make(**kwargs):
        return GDPApp(recognizer=gdp_recognizer, **kwargs)

    return make


@pytest.fixture(scope="module")
def gestures():
    return GestureGenerator(gdp_templates(), seed=123)


def do(app, stroke, manip_xy=None, dwell=0.3):
    manip = (
        Stroke.from_xy(manip_xy, dt=0.03) if manip_xy is not None else None
    )
    app.perform(perform_gesture(stroke, dwell=dwell, manipulation_path=manip))


def anchored(stroke, x, y):
    """Translate a stroke so its first point lands on (x, y)."""
    return stroke.translated(x - stroke.start.x, y - stroke.start.y)


class TestCreationGestures:
    def test_rect_gesture_creates_rect(self, app_factory, gestures):
        app = app_factory()
        stroke = gestures.generate("rect").stroke.translated(100, 100)
        do(app, stroke, manip_xy=[(400, 350)])
        assert len(app.shapes) == 1
        rect = app.shapes[0]
        assert isinstance(rect, RectShape)
        # Corner 1 fixed at the gesture start (figure 3)...
        assert rect.corners[0][0] == pytest.approx(stroke.start.x)
        assert rect.corners[0][1] == pytest.approx(stroke.start.y)
        # ...corner 2 rubberbanded to the final mouse position.
        assert rect.corners[1] == (400, 350)

    def test_line_gesture_creates_line(self, app_factory, gestures):
        app = app_factory()
        stroke = gestures.generate("line").stroke.translated(50, 50)
        do(app, stroke, manip_xy=[(500, 80)])
        line = app.shapes[0]
        assert isinstance(line, LineShape)
        assert line.endpoints[0][0] == pytest.approx(stroke.start.x)
        assert line.endpoints[1] == (500, 80)

    def test_ellipse_gesture_center_fixed(self, app_factory, gestures):
        app = app_factory()
        stroke = gestures.generate("ellipse").stroke.translated(200, 200)
        do(app, stroke, manip_xy=[(300, 260)])
        ellipse = app.shapes[0]
        assert isinstance(ellipse, EllipseShape)
        assert ellipse.center[0] == pytest.approx(stroke.start.x)
        assert ellipse.center[1] == pytest.approx(stroke.start.y)
        assert ellipse.rx == pytest.approx(abs(300 - stroke.start.x))
        assert ellipse.ry == pytest.approx(abs(260 - stroke.start.y))

    def test_text_gesture_places_text(self, app_factory, gestures):
        app = app_factory()
        stroke = gestures.generate("text").stroke.translated(150, 400)
        do(app, stroke)
        assert isinstance(app.shapes[0], TextShape)

    def test_rubberbanding_tracks_every_manip_point(
        self, app_factory, gestures
    ):
        app = app_factory()
        stroke = gestures.generate("rect").stroke.translated(100, 100)
        do(app, stroke, manip_xy=[(300, 300), (320, 340), (350, 310)])
        # The final manipulation point wins.
        assert app.shapes[0].corners[1] == (350, 310)


class TestObjectGestures:
    """Semantics of gestures directed at existing objects.

    These assert exact post-conditions (figure 3's parameter table), so
    they disable eager recognition: an eager transition reclassifies on a
    prefix and turns the stroke's tail into manipulation, which is
    correct behaviour but makes expected coordinates gesture-dependent.
    The timeout and mouse-up transitions classify the full stroke.
    """

    def make_app_with_rect(self, app_factory, gestures):
        app = app_factory(use_eager=False)
        stroke = gestures.generate("rect").stroke.translated(100, 100)
        do(app, stroke, manip_xy=[(250, 250)])
        return app, app.shapes[0]

    def test_delete_gesture_removes_object_at_start(
        self, app_factory, gestures
    ):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        corner = rect.corners[0]
        stroke = anchored(gestures.generate("delete").stroke, *corner)
        do(app, stroke)
        assert rect not in app.canvas

    def test_delete_on_empty_space_is_harmless(self, app_factory, gestures):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        stroke = gestures.generate("delete").stroke.translated(600, 500)
        do(app, stroke)
        assert rect in app.canvas

    def test_move_gesture_repositions_object(self, app_factory, gestures):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        corner = rect.corners[0]
        before = tuple(rect.corners[0])
        stroke = anchored(gestures.generate("move").stroke, *corner)
        do(app, stroke, manip_xy=[(stroke.end.x + 100, stroke.end.y + 50)])
        after = rect.corners[0]
        assert after[0] == pytest.approx(before[0] + 100)
        assert after[1] == pytest.approx(before[1] + 50)

    def test_copy_gesture_duplicates_and_positions(
        self, app_factory, gestures
    ):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        corner = rect.corners[0]
        stroke = anchored(gestures.generate("copy").stroke, *corner)
        do(app, stroke, manip_xy=[(stroke.end.x + 150, stroke.end.y)])
        assert len(app.shapes) == 2
        original, duplicate = app.shapes
        assert original is rect
        assert isinstance(duplicate, RectShape)
        # The original did not move.
        assert original.corners[0] == corner

    def test_rotate_scale_gesture_scales_object(self, app_factory, gestures):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        corner = rect.corners[0]
        width_before = abs(rect.corners[1][0] - rect.corners[0][0])
        stroke = anchored(gestures.generate("rotate-scale").stroke, *corner)
        # Drag the handle to twice its distance from the center.
        cx, cy = stroke.start.x, stroke.start.y
        hx, hy = stroke.end.x, stroke.end.y
        far = (cx + (hx - cx) * 2.0, cy + (hy - cy) * 2.0)
        do(app, stroke, manip_xy=[far])
        width_after = abs(rect.corners[1][0] - rect.corners[0][0])
        assert width_after == pytest.approx(width_before * 2.0, rel=0.05)

    def test_dot_gesture_selects(self, app_factory, gestures):
        app, rect = self.make_app_with_rect(app_factory, gestures)
        corner = rect.corners[0]
        dot = anchored(gestures.generate("dot").stroke, *corner)
        do(app, dot, dwell=0.0)
        assert app.canvas.selection == {rect}


class TestGroupGesture:
    def test_group_encloses_objects(self, app_factory, gestures):
        app = app_factory(use_eager=False)
        # The group circle at training scale spans roughly 100x100 px;
        # translated to (260, 180) it encloses (260..360, 180..280).
        r1 = app.canvas.create_rect(290, 210, 310, 230)
        r2 = app.canvas.create_rect(320, 240, 335, 255)
        outside = app.canvas.create_rect(700, 60, 730, 90)
        stroke = gestures.generate("group").stroke.translated(260, 180)
        do(app, stroke)
        groups = [s for s in app.shapes if isinstance(s, GroupShape)]
        assert len(groups) == 1
        assert r1 in groups[0].members
        assert r2 in groups[0].members
        assert outside not in groups[0].members

    def test_touching_during_manipulation_adds_to_group(
        self, app_factory, gestures
    ):
        app = app_factory(use_eager=False)
        r1 = app.canvas.create_rect(290, 210, 310, 230)
        extra = app.canvas.create_rect(650, 420, 680, 450)
        stroke = gestures.generate("group").stroke.translated(260, 180)
        # During manipulation, touch the extra rect's edge.
        do(app, stroke, manip_xy=[(665, 420)])
        groups = [s for s in app.shapes if isinstance(s, GroupShape)]
        assert len(groups) == 1
        assert r1 in groups[0].members
        assert extra in groups[0].members


class TestEditGesture:
    def test_edit_brings_up_control_points(self, app_factory, gestures):
        app = app_factory(use_eager=False)
        stroke = gestures.generate("rect").stroke.translated(150, 150)
        do(app, stroke, manip_xy=[(350, 300)])
        rect = app.shapes[0]
        edit = anchored(gestures.generate("edit").stroke, *rect.corners[0])
        do(app, edit)
        shape_view = app.view.view_for(rect)
        assert shape_view.editing
        assert len(shape_view.children) == 2  # two corner handles

    def test_control_points_respond_to_drag(self, app_factory, gestures):
        # "The control points do not themselves respond to gesture, but
        # can be dragged around directly" — gesture and direct
        # manipulation in one interface.
        from repro.events import EventKind, MouseEvent

        app = app_factory(use_eager=False)
        stroke = gestures.generate("rect").stroke.translated(150, 150)
        do(app, stroke, manip_xy=[(350, 300)])
        rect = app.shapes[0]
        edit = anchored(gestures.generate("edit").stroke, *rect.corners[0])
        do(app, edit)
        # Drag the corner-1 handle.
        x, y = rect.corners[1]
        app.perform(
            [
                MouseEvent(EventKind.PRESS, x, y, 100.0),
                MouseEvent(EventKind.MOVE, x + 30, y + 20, 100.1),
                MouseEvent(EventKind.RELEASE, x + 30, y + 20, 100.2),
            ]
        )
        assert rect.corners[1][0] == pytest.approx(x + 30)
        assert rect.corners[1][1] == pytest.approx(y + 20)
