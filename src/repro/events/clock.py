"""A virtual clock.

All interactive behaviour in the reproduction — most importantly the
200 ms motionless timeout — is driven by simulated time, so tests and
benchmarks are deterministic and run as fast as the CPU allows, never in
real time.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0.0:
            raise ValueError("the clock cannot run backwards")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t`` (no-op if ``t`` is in the past)."""
        if t > self._now:
            self._now = t
        return self._now
