"""Labelled gesture datasets and JSON persistence."""

from .gesture_set import GestureExample, GestureSet, TrainTestSplit

__all__ = ["GestureExample", "GestureSet", "TrainTestSplit"]
