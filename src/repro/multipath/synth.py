"""Synthetic multi-finger gesture classes (the Sensor Frame substitute).

Five classes exercise the path-count gating and per-path features:

* ``tap`` — one finger, a short dab (1 path);
* ``swipe`` — one finger, a long rightward stroke (1 path);
* ``pinch`` — two fingers converging (2 paths);
* ``spread`` — two fingers diverging (2 paths);
* ``rotate`` — two fingers orbiting a common center (2 paths).
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import Point, Stroke
from .gesture import MultiPathGesture

__all__ = ["MULTIPATH_CLASS_NAMES", "MultiPathGenerator"]

MULTIPATH_CLASS_NAMES: tuple[str, ...] = (
    "tap",
    "swipe",
    "pinch",
    "spread",
    "rotate",
)


class MultiPathGenerator:
    """Draws noisy examples of the five multi-finger classes."""

    def __init__(self, seed: int = 0, scale: float = 100.0, jitter: float = 1.5):
        self._rng = np.random.default_rng(seed)
        self.scale = scale
        self.jitter = jitter

    @property
    def class_names(self) -> tuple[str, ...]:
        return MULTIPATH_CLASS_NAMES

    def generate(self, class_name: str, points_per_path: int = 20) -> MultiPathGesture:
        maker = {
            "tap": self._tap,
            "swipe": self._swipe,
            "pinch": self._pinch,
            "spread": self._spread,
            "rotate": self._rotate,
        }.get(class_name)
        if maker is None:
            raise KeyError(f"unknown multipath class {class_name!r}")
        return maker(points_per_path)

    def generate_examples(
        self, count_per_class: int
    ) -> dict[str, list[MultiPathGesture]]:
        return {
            name: [self.generate(name) for _ in range(count_per_class)]
            for name in MULTIPATH_CLASS_NAMES
        }

    # -- per-class constructions ------------------------------------------------

    def _path(self, xs, ys, n: int) -> Stroke:
        """Linear interpolation between waypoints with jitter, 100 Hz."""
        ts = np.linspace(0.0, 1.0, n)
        px = np.interp(ts, np.linspace(0, 1, len(xs)), xs)
        py = np.interp(ts, np.linspace(0, 1, len(ys)), ys)
        return Stroke(
            Point(
                float(x + self._rng.normal(0.0, self.jitter)),
                float(y + self._rng.normal(0.0, self.jitter)),
                float(i * 0.01),
            )
            for i, (x, y) in enumerate(zip(px, py))
        )

    def _tap(self, n: int) -> MultiPathGesture:
        x = self._rng.uniform(0, self.scale)
        y = self._rng.uniform(0, self.scale)
        return MultiPathGesture([self._path([x, x], [y, y], max(n // 4, 3))])

    def _swipe(self, n: int) -> MultiPathGesture:
        y = self._rng.uniform(0, self.scale)
        return MultiPathGesture(
            [self._path([0.0, 1.6 * self.scale], [y, y], n)]
        )

    def _pinch(self, n: int) -> MultiPathGesture:
        cx, cy = self.scale / 2, self.scale / 2
        gap = self.scale * 0.5
        left = self._path([cx - gap, cx - gap * 0.1], [cy, cy], n)
        right = self._path([cx + gap, cx + gap * 0.1], [cy, cy], n)
        return MultiPathGesture([left, right])

    def _spread(self, n: int) -> MultiPathGesture:
        cx, cy = self.scale / 2, self.scale / 2
        gap = self.scale * 0.5
        left = self._path([cx - gap * 0.1, cx - gap], [cy, cy], n)
        right = self._path([cx + gap * 0.1, cx + gap], [cy, cy], n)
        return MultiPathGesture([left, right])

    def _rotate(self, n: int) -> MultiPathGesture:
        cx, cy = self.scale / 2, self.scale / 2
        radius = self.scale * 0.4
        sweep = math.pi * 0.75
        start = self._rng.uniform(0, 2 * math.pi)
        angles = np.linspace(start, start + sweep, n)
        finger1 = self._path(
            list(cx + radius * np.cos(angles)),
            list(cy + radius * np.sin(angles)),
            n,
        )
        finger2 = self._path(
            list(cx + radius * np.cos(angles + math.pi)),
            list(cy + radius * np.sin(angles + math.pi)),
            n,
        )
        return MultiPathGesture([finger1, finger2])
