"""Synthetic gesture generation — the reproduction's stand-in for users.

Four template families mirror the paper's four gesture sets:

* :func:`eight_direction_templates` — figure 9's eight direction pairs,
* :func:`ud_templates` — figures 5–7's U and D classes,
* :func:`gdp_templates` — GDP's eleven classes (figures 3 and 10),
* :func:`note_templates` — figure 8's nested note gestures.

Three more families feed the modality layer (:mod:`repro.modal`):

* :func:`modal_templates` — tap, hold, scrolls and cardinal swipes,
* :func:`swipe_templates` — all eight compass flicks,
* :func:`pinch_templates` — finger-role paths of two-path gestures.
"""

from .directions import (
    DIRECTION_VECTORS,
    EIGHT_DIRECTION_CLASSES,
    direction_pair_template,
    eight_direction_templates,
    ud_templates,
)
from .gdp_classes import GDP_CLASS_NAMES, gdp_templates
from .generator import (
    GeneratedGesture,
    GenerationParams,
    GestureGenerator,
    with_params,
)
from .modal import (
    MODAL_CLASS_NAMES,
    PINCH_CLASS_NAMES,
    SWIPE_CLASS_NAMES,
    modal_templates,
    modality_of,
    pinch_templates,
    swipe_templates,
)
from .notes import NOTE_CLASS_NAMES, note_templates
from .templates import GestureTemplate, arc_waypoints

# The CLI-facing family names, in one place so the CLI, the load
# generator, and the training pipeline agree on what a "--family" is.
FAMILY_NAMES = (
    "directions", "editing", "gdp", "modal", "notes", "pinch", "swipes", "ud",
)


def family_templates(family: str) -> dict:
    """Templates of one synthetic gesture family, by CLI-facing name.

    Raises:
        KeyError: for a name not in :data:`FAMILY_NAMES`.
    """
    if family == "editing":
        # Lazy: textedit builds on synth, so the import must live here.
        from ..textedit import editing_templates

        return editing_templates()
    families = {
        "directions": eight_direction_templates,
        "gdp": gdp_templates,
        "modal": modal_templates,
        "notes": note_templates,
        "pinch": pinch_templates,
        "swipes": swipe_templates,
        "ud": ud_templates,
    }
    if family not in families:
        raise KeyError(
            f"unknown gesture family {family!r}; "
            f"choose from {sorted(FAMILY_NAMES)}"
        )
    return families[family]()


__all__ = [
    "DIRECTION_VECTORS",
    "EIGHT_DIRECTION_CLASSES",
    "FAMILY_NAMES",
    "GDP_CLASS_NAMES",
    "MODAL_CLASS_NAMES",
    "NOTE_CLASS_NAMES",
    "PINCH_CLASS_NAMES",
    "SWIPE_CLASS_NAMES",
    "GeneratedGesture",
    "GenerationParams",
    "GestureGenerator",
    "GestureTemplate",
    "arc_waypoints",
    "direction_pair_template",
    "eight_direction_templates",
    "family_templates",
    "gdp_templates",
    "modal_templates",
    "modality_of",
    "note_templates",
    "pinch_templates",
    "swipe_templates",
    "ud_templates",
    "with_params",
]
