"""Property tests for the metrics registry's invariants.

Hypothesis drives random observation streams and interleaved snapshot
points at the invariants the serving layer relies on:

* a histogram's ``count`` equals the number of ``observe`` calls, its
  bucket counts sum to ``count``, and ``sum``/``min``/``max`` agree
  with the exact stream;
* every value lands in exactly the bucket its edges describe;
* snapshots are monotone — a later snapshot never shows a smaller
  counter or histogram count than an earlier one;
* attaching a full observer (metrics + tracing) to the pool never
  changes a single classification decision, in either execution mode.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Counter, Histogram, MetricsRegistry, PoolObserver, Tracer
from repro.serve import generate_workload, run_load
from repro.synth import eight_direction_templates

finite_values = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

bounds_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=12,
    unique=True,
).map(sorted)


@settings(deadline=None, max_examples=100)
@given(bounds=bounds_lists, values=st.lists(finite_values, max_size=200))
def test_histogram_totals_match_the_stream(bounds, values):
    h = Histogram("h", bounds)
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert sum(h.bucket_counts) == len(values)
    assert h.total == pytest.approx(math.fsum(values))
    if values:
        assert h.vmin == min(values)
        assert h.vmax == max(values)
    else:
        assert h.vmin == math.inf and h.vmax == -math.inf


@settings(deadline=None, max_examples=100)
@given(bounds=bounds_lists, values=st.lists(finite_values, max_size=200))
def test_every_value_lands_in_its_own_bucket(bounds, values):
    h = Histogram("h", bounds)
    for v in values:
        h.observe(v)
    edges = list(h.bounds) + [math.inf]
    expected = [0] * len(edges)
    for v in values:
        for i, edge in enumerate(edges):
            if v <= edge:
                expected[i] += 1
                break
    assert h.bucket_counts == expected


@settings(deadline=None, max_examples=100)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("inc"),
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=100),
            ),
            st.tuples(
                st.just("obs"),
                st.sampled_from(["x", "y"]),
                finite_values,
            ),
            st.tuples(st.just("snap"), st.none(), st.none()),
        ),
        max_size=60,
    )
)
def test_snapshots_are_monotone(ops):
    registry = MetricsRegistry()
    previous = registry.snapshot()
    for op, name, arg in ops + [("snap", None, None)]:
        if op == "inc":
            registry.counter(name).inc(arg)
        elif op == "obs":
            registry.histogram(name).observe(arg)
        else:
            current = registry.snapshot()
            for cname, value in previous["counters"].items():
                assert current["counters"][cname] >= value
            for hname, hist in previous["histograms"].items():
                assert current["histograms"][hname]["count"] >= hist["count"]
            previous = current


def test_counter_rejects_negative_steps():
    c = Counter("c")
    c.inc()
    c.inc(0)
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 1


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", [])
    with pytest.raises(ValueError):
        Histogram("h", [2.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("h", [1.0, 1.0])


def test_registry_returns_the_same_cell_per_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")
    registry.counter("a").inc(3)
    assert registry.snapshot()["counters"] == {"a": 3}


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_snapshot_is_pure_json(seed):
    """Whatever lands in a snapshot must survive a JSON round trip."""
    import json
    import random

    rng = random.Random(seed)
    registry = MetricsRegistry()
    for _ in range(50):
        if rng.random() < 0.5:
            registry.counter(rng.choice("abc")).inc(rng.randrange(5))
        else:
            registry.histogram(rng.choice("xy")).observe(rng.uniform(-10, 1e5))
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap, sort_keys=True)) == snap


@pytest.mark.parametrize("batched", [True, False])
def test_observability_never_changes_decisions(directions_recognizer, batched):
    """Tracing + metrics on vs off: bit-identical decision streams."""
    workload = generate_workload(
        eight_direction_templates(), clients=6, gestures_per_client=2, seed=55
    )
    plain = run_load(
        directions_recognizer, workload, batched=batched, collect=True
    )
    observer = PoolObserver(metrics=MetricsRegistry(), tracer=Tracer())
    observed = run_load(
        directions_recognizer,
        workload,
        batched=batched,
        collect=True,
        observer=observer,
    )
    assert observed.decision_log == plain.decision_log
    assert observed.decisions == plain.decisions
    # ... and the observer really was live, not silently detached.
    counters = observed.metrics["counters"]
    assert counters["pool.sessions_opened"] == 12
    assert counters["pool.commits"] > 0
