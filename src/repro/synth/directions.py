"""Two-segment direction-pair gesture classes (paper figures 5–7 and 9).

Figure 9 evaluates eight classes, "each named for the direction of its two
segments, e.g. 'ur' means 'up, right'".  Every gesture is ambiguous along
its first segment — four classes share each initial direction with one
other class at 90 degrees... strictly, each initial direction is shared by
exactly two classes (e.g. ``ur`` and ``ul`` both start upward), so the
gesture "becomes unambiguous once the corner is turned and the second
segment begun".

Figures 5–7 use the two-class subset the paper calls U and D: both start
with a rightward segment; U turns up, D turns down.

Screen coordinates: y grows downward, so "up" is (0, -1).
"""

from __future__ import annotations

from .templates import GestureTemplate

__all__ = [
    "DIRECTION_VECTORS",
    "EIGHT_DIRECTION_CLASSES",
    "direction_pair_template",
    "eight_direction_templates",
    "ud_templates",
]

DIRECTION_VECTORS: dict[str, tuple[float, float]] = {
    "u": (0.0, -1.0),
    "d": (0.0, 1.0),
    "l": (-1.0, 0.0),
    "r": (1.0, 0.0),
}

# The eight classes of figure 9, in the figure's row order.
EIGHT_DIRECTION_CLASSES: tuple[str, ...] = (
    "dr",
    "dl",
    "rd",
    "ld",
    "ru",
    "lu",
    "ur",
    "ul",
)


def direction_pair_template(
    name: str, first_fraction: float = 0.5
) -> GestureTemplate:
    """A two-segment template from a two-letter direction name.

    ``first_fraction`` sets how much of the unit path the first segment
    occupies; the paper's examples are near half-and-half.
    """
    if len(name) != 2 or name[0] not in DIRECTION_VECTORS or name[1] not in DIRECTION_VECTORS:
        raise ValueError(f"not a direction pair: {name!r}")
    if not 0.0 < first_fraction < 1.0:
        raise ValueError("first_fraction must be strictly between 0 and 1")
    (dx1, dy1) = DIRECTION_VECTORS[name[0]]
    (dx2, dy2) = DIRECTION_VECTORS[name[1]]
    corner = (dx1 * first_fraction, dy1 * first_fraction)
    end = (
        corner[0] + dx2 * (1.0 - first_fraction),
        corner[1] + dy2 * (1.0 - first_fraction),
    )
    return GestureTemplate(
        name=name,
        waypoints=((0.0, 0.0), corner, end),
        corner_indices=(1,),
    )


def eight_direction_templates() -> dict[str, GestureTemplate]:
    """The figure-9 gesture set."""
    return {
        name: direction_pair_template(name) for name in EIGHT_DIRECTION_CLASSES
    }


def ud_templates() -> dict[str, GestureTemplate]:
    """The U and D classes of figures 5–7: right-then-up, right-then-down."""
    return {
        "U": GestureTemplate(
            name="U",
            waypoints=((0.0, 0.0), (0.6, 0.0), (0.6, -0.4)),
            corner_indices=(1,),
        ),
        "D": GestureTemplate(
            name="D",
            waypoints=((0.0, 0.0), (0.6, 0.0), (0.6, 0.4)),
            corner_indices=(1,),
        ),
    }
