"""Unit tests for the closed-form trainer."""

import numpy as np
import pytest

from repro.recognizer import pooled_covariance, train_linear_classifier


def gaussian_class(rng, mean, cov, n):
    return list(rng.multivariate_normal(mean, cov, size=n))


class TestPooledCovariance:
    def test_single_class_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 3))
        mean = data.mean(axis=0, keepdims=True)
        pooled = pooled_covariance([data], mean)
        np.testing.assert_allclose(pooled, np.cov(data.T, bias=False), atol=1e-9)

    def test_two_identical_classes(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(40, 2))
        means = np.vstack([data.mean(axis=0), data.mean(axis=0)])
        pooled = pooled_covariance([data, data], means)
        # Pooled scatter doubles, denominator ~doubles.
        np.testing.assert_allclose(
            pooled, np.cov(data.T) * (39 * 2) / (80 - 2), atol=1e-9
        )

    def test_empty_class_contributes_nothing(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(30, 2))
        means = np.vstack([data.mean(axis=0), np.zeros(2)])
        pooled = pooled_covariance([data, np.zeros((0, 2))], means)
        assert np.isfinite(pooled).all()

    def test_degenerate_denominator_clamped(self):
        data = np.array([[1.0, 2.0]])
        means = data.copy()
        pooled = pooled_covariance([data], means)
        assert np.isfinite(pooled).all()


class TestTrainer:
    def test_separates_well_separated_gaussians(self):
        rng = np.random.default_rng(3)
        cov = np.eye(2) * 0.1
        examples = {
            "left": gaussian_class(rng, [-5.0, 0.0], cov, 30),
            "right": gaussian_class(rng, [5.0, 0.0], cov, 30),
        }
        result = train_linear_classifier(examples)
        assert result.classifier.classify(np.array([-4.0, 0.3])) == "left"
        assert result.classifier.classify(np.array([4.0, -0.3])) == "right"

    def test_training_accuracy_on_separable_data(self):
        rng = np.random.default_rng(4)
        cov = np.eye(3) * 0.2
        examples = {
            "a": gaussian_class(rng, [0, 0, 0], cov, 25),
            "b": gaussian_class(rng, [4, 0, 0], cov, 25),
            "c": gaussian_class(rng, [0, 4, 0], cov, 25),
        }
        result = train_linear_classifier(examples)
        hits = sum(
            result.classifier.classify(np.asarray(v)) == name
            for name, vectors in examples.items()
            for v in vectors
        )
        assert hits / 75 > 0.95

    def test_means_recorded_per_class(self):
        examples = {
            "a": [np.array([1.0, 1.0]), np.array([3.0, 3.0])],
            "b": [np.array([10.0, 0.0])],
        }
        result = train_linear_classifier(examples)
        np.testing.assert_allclose(result.mean_of("a"), [2.0, 2.0])
        np.testing.assert_allclose(result.mean_of("b"), [10.0, 0.0])

    def test_handles_wildly_different_feature_scales(self):
        # The regression that broke the first build: one feature in the
        # millions must not wash out the others.
        rng = np.random.default_rng(5)
        def cls(mean_small, mean_big):
            return [
                np.array(
                    [mean_small + rng.normal(0, 0.05),
                     mean_big + rng.normal(0, 1e5)]
                )
                for _ in range(20)
            ]

        examples = {"a": cls(-1.0, 1e6), "b": cls(1.0, 1e6)}
        result = train_linear_classifier(examples)
        hits = sum(
            result.classifier.classify(v) == name
            for name, vectors in examples.items()
            for v in vectors
        )
        assert hits / 40 > 0.9

    def test_handles_constant_feature(self):
        # Zero-variance feature (e.g. fixed duration) must not blow up.
        rng = np.random.default_rng(6)
        examples = {
            "a": [np.array([rng.normal(-3, 0.1), 7.0]) for _ in range(15)],
            "b": [np.array([rng.normal(3, 0.1), 7.0]) for _ in range(15)],
        }
        result = train_linear_classifier(examples)
        assert result.classifier.classify(np.array([-3.0, 7.0])) == "a"
        assert np.isfinite(result.classifier.weights).all()

    def test_single_example_per_class(self):
        examples = {
            "a": [np.array([0.0, 0.0])],
            "b": [np.array([1.0, 1.0])],
        }
        result = train_linear_classifier(examples)
        assert result.classifier.classify(np.array([0.1, -0.1])) == "a"

    def test_metric_shares_inverse_covariance(self):
        rng = np.random.default_rng(7)
        examples = {
            "a": gaussian_class(rng, [0, 0], np.eye(2), 20),
            "b": gaussian_class(rng, [5, 5], np.eye(2), 20),
        }
        result = train_linear_classifier(examples)
        d_aa = result.metric.squared_distance(
            result.mean_of("a"), result.mean_of("a")
        )
        d_ab = result.metric.squared_distance(
            result.mean_of("a"), result.mean_of("b")
        )
        assert d_aa == 0.0
        assert d_ab > 1.0


class TestTrainerErrors:
    def test_empty_training_set(self):
        with pytest.raises(ValueError):
            train_linear_classifier({})

    def test_empty_class(self):
        with pytest.raises(ValueError, match="no training examples"):
            train_linear_classifier({"a": [np.zeros(2)], "b": []})

    def test_inconsistent_dimensions(self):
        with pytest.raises(ValueError):
            train_linear_classifier(
                {"a": [np.zeros(2)], "b": [np.zeros(3)]}
            )
