"""Orchestration: stage keys, caching, checkpoints, publish.

:class:`TrainingPipeline` wires the six stages of :mod:`repro.train.
stages` through the content-addressed :class:`~repro.train.cache.
StageCache`.  Each stage's key is computed from the content hashes of
its inputs, looked up, and only computed on a miss; a checkpoint is
written after every completed stage.  Because keys are pure content,
*resume is just re-running*: a killed run's restart hits the cache for
every stage that finished and recomputes nothing else, and the final
artifact is bit-identical to an uninterrupted run at any ``jobs`` count.

Observability follows the repo's duck-typed observer convention: the
pipeline accepts any object with ``counter(name).inc(n)`` and
``histogram(name).observe(v)`` — e.g. :class:`repro.obs.MetricsRegistry`
— and imports nothing from :mod:`repro.obs`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..hashing import content_hash
from . import stages
from .cache import StageCache, load_checkpoint, write_checkpoint
from .spec import TrainJobSpec

__all__ = ["TrainingKilled", "TrainingPipeline", "TrainingRunResult"]

# Stage-duration histogram bounds: sub-millisecond cache hits up to
# multi-second subgesture enumeration on large sets.
STAGE_MS_BUCKETS = (
    0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0,
    1000.0, 5000.0, 10000.0, 60000.0,
)


class TrainingKilled(RuntimeError):
    """Raised by ``kill_after``: the run stopped after a named stage.

    The deterministic stand-in for SIGKILL mid-run — the named stage's
    output and the checkpoint are already on disk, exactly as after a
    real crash between stages.  CI's kill/resume smoke and the training
    benchmark both use it.
    """

    def __init__(self, stage: str):
        super().__init__(f"training killed after stage {stage!r}")
        self.stage = stage


@dataclass
class TrainingRunResult:
    """Everything one pipeline run produced."""

    spec: TrainJobSpec
    model: dict  # EagerRecognizer.to_dict()
    model_hash: str  # sha256 of the model's canonical JSON
    lineage: dict  # dataset/stage hashes, seed, jobs, wall time
    stages_run: list[str] = field(default_factory=list)
    stages_cached: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)  # §4.5–4.6 build stats
    example_count: int = 0
    class_count: int = 0
    wall_time_s: float = 0.0
    published: dict | None = None  # {"name", "version", "path"} if published

    @property
    def version(self) -> str:
        """The registry version this model has (or would get)."""
        return self.model_hash[:12]


class TrainingPipeline:
    """Run one :class:`TrainJobSpec` through the staged trainer.

    Args:
        spec: what to train.
        cache_dir: stage-cache root; ``None`` keeps the cache in memory
            (one run still deduplicates, nothing persists).
        jobs: process fan-out for the per-example/per-class stages; the
            output is bit-identical for every value.
        metrics: optional observer (``counter``/``histogram`` protocol).
        kill_after: name of a stage to die after — see :class:`TrainingKilled`.
        resume: require an existing checkpoint for this spec in
            ``cache_dir`` and continue from it.  Purely a guard: the
            content-addressed cache is what actually skips finished work.
    """

    def __init__(
        self,
        spec: TrainJobSpec,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        metrics=None,
        kill_after: str | None = None,
        resume: bool = False,
    ):
        if kill_after is not None and kill_after not in stages.STAGES:
            raise ValueError(
                f"unknown stage {kill_after!r}; choose from {list(stages.STAGES)}"
            )
        if resume and cache_dir is None:
            raise ValueError("resume requires a cache directory")
        self.spec = spec
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache = StageCache(self.cache_dir)
        self.jobs = max(1, int(jobs))
        self.metrics = metrics
        self.kill_after = kill_after
        self.resume = resume

    # -- observer helpers ----------------------------------------------------

    def _count(self, name: str, n: int) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _observe_ms(self, name: str, ms: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name, STAGE_MS_BUCKETS).observe(ms)

    # -- the run -------------------------------------------------------------

    def run(self) -> TrainingRunResult:
        """Execute (or replay) every stage; returns the packaged model.

        Raises:
            TrainingKilled: when ``kill_after`` fired.
            ValueError: on ``resume`` without a matching checkpoint.
        """
        started = time.perf_counter()
        spec = self.spec
        if self.resume:
            checkpoint = load_checkpoint(self.cache_dir, spec.job_key)
            if checkpoint is None:
                raise ValueError(
                    f"no checkpoint for job {spec.job_key} under {self.cache_dir}"
                )
            if checkpoint.get("spec") != spec.identity():
                raise ValueError(
                    "checkpoint spec does not match this job; refusing to resume"
                )
        config = spec.training_config()

        result = TrainingRunResult(
            spec=spec, model={}, model_hash="", lineage={}
        )
        completed: dict[str, str] = {}

        def run_stage(name: str, key: str, compute):
            t0 = time.perf_counter()
            payload = self.cache.get(key)
            if payload is None:
                payload = self.cache.put(key, compute())
                result.stages_run.append(name)
                self._count("train.stages_run", 1)
            else:
                result.stages_cached.append(name)
                self._count("train.stages_cached", 1)
            self._observe_ms("train.stage_ms", (time.perf_counter() - t0) * 1000.0)
            completed[name] = key
            if self.cache_dir is not None:
                write_checkpoint(
                    self.cache_dir,
                    spec.job_key,
                    {"spec": spec.identity(), "stages": dict(completed)},
                )
            if self.kill_after == name:
                raise TrainingKilled(name)
            return payload

        manifest_key = stages.stage_key(
            "manifest", {}, stages.manifest_params(spec)
        )
        manifest = run_stage(
            "manifest", manifest_key, lambda: stages.build_manifest(spec)
        )
        manifest_hash = content_hash(manifest)

        features_key = stages.stage_key(
            "features", {"manifest": manifest_hash}, {}
        )
        features = run_stage(
            "features",
            features_key,
            lambda: stages.run_features(manifest, self.jobs),
        )
        features_hash = content_hash(features)

        classifier_key = stages.stage_key(
            "classifier", {"features": features_hash}, {}
        )
        classifier = run_stage(
            "classifier",
            classifier_key,
            lambda: stages.run_classifier(features, self.jobs),
        )
        classifier_hash = content_hash(classifier)

        subgestures_key = stages.stage_key(
            "subgestures",
            {"manifest": manifest_hash, "classifier": classifier_hash},
            {"min_prefix_points": config.min_prefix_points},
        )
        subgestures = run_stage(
            "subgestures",
            subgestures_key,
            lambda: stages.run_subgestures(
                manifest, classifier, config.min_prefix_points, self.jobs
            ),
        )
        subgestures_hash = content_hash(subgestures)

        auc_key = stages.stage_key(
            "auc",
            {"subgestures": subgestures_hash, "classifier": classifier_hash},
            {name: getattr(config, name) for name in stages.AUC_PARAM_FIELDS},
        )
        auc = run_stage(
            "auc", auc_key, lambda: stages.run_auc(subgestures, classifier, config)
        )
        auc_hash = content_hash(auc)

        package_key = stages.stage_key(
            "package",
            {"classifier": classifier_hash, "auc": auc_hash},
            {"min_points": config.min_prefix_points},
        )
        package = run_stage(
            "package",
            package_key,
            lambda: stages.run_package(classifier, auc, config.min_prefix_points),
        )

        wall = time.perf_counter() - started
        self._count("train.examples", len(manifest["examples"]))
        self._count("train.classes", len(manifest["classes"]))
        self._count("train.subgestures", auc["subgesture_count"])
        self._count("train.moved_subgestures", auc["stats"]["moved_count"])
        self._count("train.tweak_adjustments", auc["stats"]["tweak_adjustments"])

        result.model = package["model"]
        result.model_hash = package["model_hash"]
        result.example_count = len(manifest["examples"])
        result.class_count = len(manifest["classes"])
        result.stats = dict(auc["stats"], set_counts=auc["set_counts"])
        result.wall_time_s = wall
        result.lineage = {
            "spec": spec.identity(),
            "dataset": manifest_hash,
            "stages": dict(completed),
            "seed": spec.seed if spec.family else None,
            "jobs": self.jobs,
            "wall_time_s": round(wall, 6),
            "model_hash": package["model_hash"],
            "cache": {"hits": self.cache.hits, "misses": self.cache.misses},
        }
        return result

    # -- publishing ----------------------------------------------------------

    def publish(self, registry_root: str | Path, result: TrainingRunResult):
        """Publish a finished run into a :class:`~repro.serve.ModelRegistry`.

        The registry's content-derived version necessarily equals
        ``result.version`` — both hash the same canonical model JSON.
        Returns the :class:`~repro.serve.registry.ModelVersion`.
        """
        # Imported here so training never pulls in the serving stack
        # unless a publish actually happens.
        from ..eager import EagerRecognizer
        from ..serve import ModelRegistry

        registry = ModelRegistry(registry_root)
        published = registry.publish(
            result.spec.model_name(),
            EagerRecognizer.from_dict(result.model),
            metadata={"source": "repro.train", "lineage": result.lineage},
        )
        result.published = {
            "name": published.name,
            "version": published.version,
            "path": str(published.path),
        }
        self._count("train.published", 1)
        return published
