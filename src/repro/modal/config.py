"""Declarative per-modality thresholds, validated at load.

One frozen :class:`ModalityConfig` carries every knob the modality
layer reads — the Pharo OSWindow gesture menu's debounce/threshold
schema (hold distance + time, double-tap distance + time, scroll
minimum travel, pinch gap, rotation angle, edge margin) merged with the
EXWM-VR swipe detector's velocity window, minimum velocity and
linearity check.  Validation happens in ``__post_init__``, so a config
is either fully usable or never constructed: detectors and semantics
can trust every field without re-checking.

Thresholds compare *inclusively*: a windowed velocity exactly at
``swipe_min_velocity`` fires, a press of exactly ``hold_duration``
promotes.  A ``hold_duration`` of zero is legal and means "promote at
the first motionless timeout" — the degenerate hold the edge-case
tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace

__all__ = ["ModalityConfig"]


@dataclass(frozen=True)
class ModalityConfig:
    """Every threshold the modality layer reads, in screen px/seconds."""

    # hold: a press that drifts at most this far, held at least this long.
    hold_max_drift: float = 8.0
    hold_duration: float = 0.35
    # tap / double-tap: inter-stroke timing windows.
    tap_max_drift: float = 12.0
    tap_max_duration: float = 0.25
    double_tap_gap: float = 0.35  # max seconds between up and next down
    double_tap_radius: float = 24.0  # max distance between the two taps
    debounce: float = 0.02  # a second down sooner than this is bounce
    # scroll: axis lock engages at this travel with this dominance.
    scroll_min_travel: float = 24.0
    scroll_axis_ratio: float = 1.5
    # swipe/flick: velocity-windowed detection.
    swipe_window: float = 0.25  # sliding window, seconds
    swipe_min_travel: float = 60.0  # px of path inside the window
    swipe_min_velocity: float = 900.0  # px/s of net displacement
    swipe_min_linearity: float = 0.9  # net displacement / path length
    swipe_directions: int = 8  # quantize to 4 or 8 compass points
    # edge swipe: a swipe starting within this margin of the viewport.
    edge_margin: float = 16.0
    # pinch / rotate: two-path commitment thresholds.
    pinch_min_travel: float = 24.0  # px of finger-gap change
    rotate_min_angle: float = 0.2  # radians of pair rotation

    def __post_init__(self) -> None:
        positive = (
            "hold_max_drift", "tap_max_drift", "tap_max_duration",
            "double_tap_gap", "double_tap_radius", "scroll_min_travel",
            "swipe_window", "swipe_min_travel", "swipe_min_velocity",
            "pinch_min_travel", "rotate_min_angle",
        )
        for name in positive:
            if not getattr(self, name) > 0.0:
                raise ValueError(f"{name} must be positive")
        for name in ("hold_duration", "debounce", "edge_margin"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 < self.swipe_min_linearity <= 1.0:
            raise ValueError("swipe_min_linearity must be in (0, 1]")
        if self.scroll_axis_ratio < 1.0:
            raise ValueError("scroll_axis_ratio must be >= 1")
        if self.swipe_directions not in (4, 8):
            raise ValueError("swipe_directions must be 4 or 8")
        if self.debounce >= self.double_tap_gap:
            raise ValueError(
                "debounce must be smaller than double_tap_gap "
                "(otherwise no second tap can ever qualify)"
            )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ModalityConfig":
        """Build from a mapping; unknown keys are an error, not noise."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown ModalityConfig keys: {', '.join(unknown)}")
        return cls(**data)

    @classmethod
    def load(cls, path: str) -> "ModalityConfig":
        """Read a JSON config file; validation runs on construction."""
        with open(path) as stream:
            data = json.load(stream)
        if not isinstance(data, dict):
            raise ValueError(f"{path}: modality config must be a JSON object")
        return cls.from_dict(data)

    def with_overrides(self, **overrides) -> "ModalityConfig":
        """A copy with some fields changed (re-validated)."""
        return replace(self, **overrides)
