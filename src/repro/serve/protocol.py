"""The NDJSON wire protocol spoken by :class:`~repro.serve.GestureServer`.

One JSON object per line, in both directions.

Requests (client → server)::

    {"op": "down", "stroke": "s1", "x": 10, "y": 20, "t": 0.00}
    {"op": "move", "stroke": "s1", "x": 14, "y": 21, "t": 0.01}
    {"op": "up",   "stroke": "s1", "x": 30, "y": 40, "t": 0.25}
    {"op": "tick", "t": 0.50}
    {"op": "sweep", "max_idle": 30.0}
    {"op": "stats"}
    {"op": "swap", "user": "alice", "model": "gdp-alice@ab12cd34ef56", "t": 0.60}

``down``/``move``/``up`` mirror :class:`~repro.serve.SessionPool`
operations; ``stroke`` is the client's id for one gesture (the server
namespaces it per connection, so clients cannot collide).  ``tick``
advances the server's virtual clock — timeouts fire from the
timestamps clients supply, never from the server's wall clock, so a
recorded interaction replays identically.  ``sweep`` asks the server to
evict every session idle for at least ``max_idle`` seconds of virtual
time (``max_idle`` defaults to ``0.0`` — evict everything idle at all)
— the remote form of :meth:`~repro.serve.SessionPool.evict_idle` that a
drain or an end-of-run cleanup needs; evicted sessions get ``evict``
replies.  ``stats`` asks for a metrics snapshot; ``t`` is optional on
``sweep`` and ``stats`` and defaults to ``0.0`` (a no-op for the
monotone virtual clock), so polling stats never moves time.

``tick`` and ``sweep`` are also *clock barriers*: the server applies
everything received before them, then advances time (then sweeps), at
the request's position in the input order — behaviour is a function of
the line sequence alone, never of how lines happened to coalesce into
read batches.

``swap`` rebinds a *user* — a client-chosen id that prefixes session
keys — to a registry model (``name`` or ``name@version``), for sessions
opened after the swap's position in line order; sessions already
in flight keep the model they pinned at open, and all other users'
byte streams are untouched (see :meth:`~repro.serve.SessionPool.
swap_model`).  The server acks with a ``swap`` reply carrying the
resolved ``name@version``.

Two further ops are *internal* — the cluster router speaks them to its
workers during live session migration and rejects them from clients:
``release`` (``{"op": "release", "stroke": "s1"}``) silently forgets a
session that migrated away (acked with ``{"kind": "released", ...}``,
never a decision), and ``pin`` (``{"op": "pin", "stroke": "s1",
"model": "name@version"}``) one-shot-pins the model the stroke's *next*
session open must bind — how a migrated session keeps the historical
model it opened under, even though the destination pool's per-user
assignments have since moved on (``model: ""`` pins the default).

Replies (server → client)::

    {"kind": "recog", "stroke": "s1", "class": "delete", "eager": true,
     "points_seen": 12, "total_points": 12, "t": 0.11, "reason": "eager"}
    {"kind": "error", "stroke": "s1", "reason": "duplicate down", "t": 0.0}
    {"kind": "stats", "t": 0.5, "sessions": 3, "channels": 2,
     "metrics": {"counters": {...}, "histograms": {...}}}

``kind`` is one of ``recog`` / ``manip`` / ``commit`` / ``evict`` /
``error`` / ``stats`` (see :class:`~repro.serve.Decision` and
:meth:`repro.obs.MetricsRegistry.snapshot`); ``metrics`` is ``null``
when the server runs without a metrics registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .pool import Decision

__all__ = [
    "ProtocolError",
    "Request",
    "decode_payload",
    "decode_request",
    "encode_decision",
    "encode_error",
    "encode_stats",
    "encode_swap",
]

_OPS = ("down", "move", "up", "tick", "sweep", "stats", "swap", "release", "pin")

# Ops that may omit ``t`` (it defaults to 0.0, a virtual-clock no-op).
_OPTIONAL_T = ("sweep", "stats", "release", "pin")


class ProtocolError(ValueError):
    """A request line that cannot be understood."""


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    op: str  # "down" | "move" | "up" | "tick" | "sweep" | "stats" | "swap"
    t: float
    stroke: str = ""
    x: float = 0.0
    y: float = 0.0
    max_idle: float = 0.0  # sweep only
    user: str = ""  # swap only: the session-key prefix to rebind
    model: str = ""  # swap only: registry "name" or "name@version"


def decode_request(line: str | bytes) -> Request:
    """Parse one NDJSON request line, validating shape and types."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad json: {exc}") from None
    return decode_payload(payload)


def decode_payload(payload) -> Request:
    """Validate one already-parsed request object.

    The validation (and every error message) is exactly
    :func:`decode_request`'s — split out so a caller that already had
    to ``json.loads`` the line for its own routing (the cluster router)
    does not parse it twice.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a json object")
    op = payload.get("op")
    if op not in _OPS:
        raise ProtocolError(f"unknown op: {op!r}")
    try:
        t = float(payload["t"])
    except KeyError:
        if op not in _OPTIONAL_T:
            raise ProtocolError("missing or non-numeric t") from None
        t = 0.0
    except (TypeError, ValueError):
        raise ProtocolError("missing or non-numeric t") from None
    if op == "sweep":
        try:
            max_idle = float(payload.get("max_idle", 0.0))
        except (TypeError, ValueError):
            raise ProtocolError("non-numeric max_idle") from None
        if max_idle < 0.0:
            raise ProtocolError("max_idle must be >= 0")
        return Request(op=op, t=t, max_idle=max_idle)
    if op in ("tick", "stats"):
        return Request(op=op, t=t)
    if op == "swap":
        user = payload.get("user")
        model = payload.get("model")
        if not isinstance(user, str) or not user:
            raise ProtocolError("missing swap user")
        if not isinstance(model, str) or not model:
            raise ProtocolError("missing swap model")
        return Request(op=op, t=t, user=user, model=model)
    stroke = payload.get("stroke")
    if not isinstance(stroke, str) or not stroke:
        raise ProtocolError("missing stroke id")
    if op == "release":
        # Internal (router → worker only): silently forget a session
        # that migrated away.  Carries no point, produces no decision.
        return Request(op=op, t=t, stroke=stroke)
    if op == "pin":
        # Internal (router → worker only): one-shot model pin for the
        # stroke's *next* session open.  ``model`` may be "" (default
        # model) — unlike swap, which always names a registry model.
        model = payload.get("model", "")
        if not isinstance(model, str):
            raise ProtocolError("missing pin model")
        return Request(op=op, t=t, stroke=stroke, model=model)
    try:
        x = float(payload["x"])
        y = float(payload["y"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError("missing or non-numeric x/y") from None
    return Request(op=op, t=t, stroke=stroke, x=x, y=y)


def encode_decision(decision: Decision, stroke: str) -> str:
    """Encode one pool decision as a reply line (without the newline)."""
    return json.dumps(
        {
            "kind": decision.kind,
            "stroke": stroke,
            "class": decision.class_name,
            "eager": decision.eager,
            "points_seen": decision.points_seen,
            "total_points": decision.total_points,
            "t": decision.t,
            "reason": decision.reason,
        }
    )


def encode_swap(user: str, model: str, t: float) -> str:
    """Encode a swap acknowledgement (without the newline).

    ``model`` is the *resolved* ``name@version`` — a client that swapped
    to a bare name learns exactly which version now serves its user.
    One shared encoder keeps the direct server's ack and the cluster
    router's synthesized ack byte-equal.
    """
    return json.dumps({"kind": "swap", "user": user, "model": model, "t": t})


def encode_error(reason: str, stroke: str = "", t: float = 0.0) -> str:
    """Encode a protocol-level error reply (without the newline)."""
    return json.dumps(
        {"kind": "error", "stroke": stroke, "reason": reason, "t": t}
    )


def encode_stats(
    metrics: dict | None,
    *,
    t: float,
    sessions: int,
    channels: int,
    profile: dict | None = None,
    busy_s: float | None = None,
) -> str:
    """Encode a metrics-snapshot reply (without the newline).

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict, or
    ``None`` when the server runs unobserved.  ``profile`` is a
    :meth:`repro.obs.PerfProfiler.snapshot` dict; the key is only
    present when a profiler is attached (``serve --profile``), keeping
    the reply unchanged for existing clients otherwise.  ``busy_s`` is
    the server's cumulative pump busy time (recognition work, as
    opposed to transport); present whenever the server reports it —
    the cluster benchmark's router/worker/transport breakdown reads it.
    """
    payload = {
        "kind": "stats",
        "t": t,
        "sessions": sessions,
        "channels": channels,
        "metrics": metrics,
    }
    if profile is not None:
        payload["profile"] = profile
    if busy_s is not None:
        payload["busy_s"] = busy_s
    return json.dumps(payload)
