"""An asyncio front end over the session pool.

:class:`GestureServer` accepts newline-delimited JSON event streams
(see :mod:`repro.serve.protocol`) over TCP, and offers the identical
interface in-process through :meth:`GestureServer.open_channel` — tests
and embedders talk to the same pump the sockets do.

Concurrency model
-----------------

All recognition runs on one *pump* task.  Every connection (and every
in-process channel) pushes decoded requests into one bounded inbox; the
pump drains whatever has accumulated, applies it to the
:class:`~repro.serve.SessionPool` as one batch — which is exactly what
makes the batched evaluator pay off — and routes the resulting decisions
to per-channel bounded outboxes.  Backpressure is explicit at both ends:

* a full inbox suspends the producing connection's reader coroutine
  (TCP flow control does the rest upstream);
* a full outbox means the consumer is not reading its replies; rather
  than buffer without bound or stall every other client, the server
  closes that channel.  Each closure only ever affects its own client.

Time is virtual, and advances **only at ``tick``/``sweep`` barriers**:
the server tracks the largest timestamp seen anywhere on its input
(``down``/``move``/``up`` carry ``t``; ``tick`` carries only ``t``) and
moves the pool's clock to it when a barrier arrives, at the barrier's
position in line order.  Motionless timeouts therefore fire
deterministically from the recorded timeline — never from the server's
wall clock, and never from how lines happened to coalesce into read
batches.  All clients of one server share a single timeline.

Per-session errors (duplicate ``down``, pool exhaustion) come back as
``error`` replies on the offending stroke; malformed lines come back as
protocol ``error`` replies; neither disturbs other strokes or clients.

Observability and chaos are injected, never built in.  Pass an
``observer`` (:class:`~repro.obs.PoolObserver`) and the pool reports
spans and metrics through it, a ``stats`` request returns the metrics
snapshot, and the pump records its inbox batch sizes; pass a
``fault_injector`` (:class:`~repro.obs.FaultInjector`) and each pump
batch is run through it — drops, duplicates, delays (to a later pump
batch), reorders, and session kills — with ``tick``/``stats`` requests
exempt.  With neither, the pump path is exactly as before.
"""

from __future__ import annotations

import asyncio
import json
from contextlib import suppress
from time import perf_counter

from ..eager import EagerRecognizer
from ..interaction import DEFAULT_TIMEOUT
from .framing import DEFAULT_MAX_FRAME, FrameReader, encode_frames, negotiate
from .lines import LineReader
from .pool import Decision, SessionPool
from .protocol import (
    ProtocolError,
    Request,
    decode_request,
    encode_decision,
    encode_error,
    encode_stats,
    encode_swap,
)

__all__ = ["Channel", "DEFAULT_MAX_LINE", "GestureServer"]

# Cap on one NDJSON request line; far beyond any legitimate request
# (the longest op is a down/move/up with four floats).
DEFAULT_MAX_LINE = 65536

_CLOSE = object()  # outbox sentinel


class _Wire:
    """One TCP connection's negotiated framing, shared between the
    reader loop (which switches it) and the reply drain task (which
    encodes with it)."""

    __slots__ = ("mode",)

    def __init__(self):
        self.mode = "ndjson"


class Channel:
    """One client's two-way lane to the server, TCP-backed or in-process."""

    def __init__(self, server: "GestureServer", channel_id: str, queue_size: int):
        self._server = server
        self.id = channel_id
        self.closed = False
        self._outbox: asyncio.Queue = asyncio.Queue(maxsize=queue_size)

    async def send(self, request: Request) -> None:
        """Submit one request; suspends while the server inbox is full."""
        if self.closed:
            raise ConnectionError("channel is closed")
        await self._server._inbox.put((self, request))

    async def recv(self) -> str | None:
        """Next reply line, or None once the channel is closed and drained."""
        item = await self._outbox.get()
        if item is _CLOSE:
            return None
        return item

    def close(self) -> None:
        self._server._close_channel(self)

    # -- server side ---------------------------------------------------------

    def _push(self, line: str) -> bool:
        """Queue a reply; False means the outbox overflowed (slow consumer)."""
        try:
            self._outbox.put_nowait(line)
            return True
        except asyncio.QueueFull:
            return False

    def _push_close(self) -> None:
        if self._outbox.full():  # make room: the consumer is gone anyway
            with suppress(asyncio.QueueEmpty):
                self._outbox.get_nowait()
        with suppress(asyncio.QueueFull):
            self._outbox.put_nowait(_CLOSE)


class GestureServer:
    """Serve one recognizer to many concurrent clients."""

    def __init__(
        self,
        recognizer: EagerRecognizer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
        max_sessions: int = 4096,
        queue_size: int = 1024,
        max_line: int = DEFAULT_MAX_LINE,
        max_frame: int = DEFAULT_MAX_FRAME,
        batched: bool = True,
        observer=None,
        fault_injector=None,
        registry=None,
        allow_lp1: bool = True,
        model_cache: int | None = None,
        record=None,
    ):
        # Model source for `swap`/`pin` requests: a ModelRegistry, a
        # registry root path, or None (those ops are then rejected with
        # an error reply — a server without a registry still speaks the
        # full protocol).
        if registry is not None and not hasattr(registry, "load"):
            from .registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry
        if model_cache is not None and registry is None:
            raise ValueError("model_cache needs a registry to reload from")
        self.pool = SessionPool(
            recognizer,
            timeout=timeout,
            max_sessions=max_sessions,
            batched=batched,
            observer=observer,
            max_models=model_cache,
            model_loader=self._load_label if model_cache is not None else None,
        )
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.max_line = max_line
        self.max_frame = max_frame
        self.allow_lp1 = allow_lp1
        # Cumulative pump busy time (recognition work, not transport):
        # the worker half of the cluster benchmark's breakdown, exported
        # on stats replies as "busy_s".
        self.busy_s = 0.0
        self.observer = observer
        self.fault_injector = fault_injector
        # Optional traffic journal: every applied down/move/up is
        # written as an adapt-harvest ``{"rec": "op", ...}`` record, so
        # a live server feeds `repro adapt` directly — no loadgen
        # `--record` replay needed.  Post-fault: the journal holds what
        # the recognizer actually saw.
        self._record = None
        self._record_owned = False
        if record is not None:
            if hasattr(record, "write"):
                self._record = record
            else:
                self._record = open(record, "w")
                self._record_owned = True
        # Largest timestamp seen anywhere on the input stream, across
        # pump batches.  Barriers advance the pool clock to this value,
        # so when a timeout fires depends only on line order, never on
        # how lines coalesced into batches.
        self._latest = float("-inf")
        self._batch_no = 0
        self._inbox: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        self._channels: dict[str, Channel] = {}
        self._next_channel = 0
        self._server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for channel in list(self._channels.values()):
            self._close_channel(channel)
        if self._pump_task is not None:
            self._pump_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._pump_task
            self._pump_task = None
        if self._record is not None:
            self._record.flush()
            if self._record_owned:
                self._record.close()
            self._record = None

    # -- the in-process API ---------------------------------------------------

    async def open_channel(self) -> Channel:
        """A client lane without a socket: same pump, same protocol."""
        self._next_channel += 1
        channel = Channel(self, f"c{self._next_channel}", self.queue_size)
        self._channels[channel.id] = channel
        return channel

    # -- the pump -------------------------------------------------------------

    async def _pump(self) -> None:
        while True:
            batch = [await self._inbox.get()]
            while True:
                try:
                    batch.append(self._inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            t0 = perf_counter()
            self._apply(batch)
            self.busy_s += perf_counter() - t0

    @staticmethod
    def _fault_key(item: tuple[Channel, Request]) -> str | None:
        """Session key of one pump item; None exempts it from faults."""
        channel, request = item
        if request.op in ("tick", "sweep", "stats", "swap", "release", "pin"):
            return None
        return f"{channel.id}/{request.stroke}"

    def _apply(self, batch: list[tuple[Channel, Request]]) -> None:
        """Apply one pump batch; the clock advances at barriers only.

        ``tick`` and ``sweep`` requests split the batch into segments:
        each segment's operations are applied, then the clock advances
        to the largest timestamp seen so far *on the whole stream* —
        at the barrier's position in line order.  Operations outside a
        barrier are applied (eager recognitions and ``up`` commits
        still come back promptly) but never move the clock, so a
        motionless timeout cannot fire earlier or later depending on
        how lines coalesced into pump batches.  Decisions are a pure
        function of input line order — the property the cluster
        router's crash-replay equivalence rests on.
        """
        if self.observer is not None:
            self.observer.server_batch(len(batch))
        live = [item for item in batch if not item[0].closed]
        kills: list = []
        if self.fault_injector is not None:
            self._batch_no += 1
            live, kills = self.fault_injector.apply(
                self._batch_no, live, key=self._fault_key
            )
        latest = self._latest
        dirty = False  # pool input buffered since the last barrier
        stats_requests: list[Channel] = []
        decisions: list[Decision] = []
        released: list[tuple[Channel, str]] = []
        for channel, request in live:
            op = request.op
            if op == "stats":
                stats_requests.append(channel)
                continue
            if op in ("tick", "sweep"):
                if request.t > latest:
                    latest = request.t
                decisions.extend(self.pool.advance_to(latest))
                if op == "sweep":
                    decisions.extend(self.pool.evict_idle(request.max_idle))
                dirty = False
                continue
            if op == "swap":
                line, applied = self._swap(channel, request)
                dirty = dirty or applied
                if not channel.closed and not channel._push(line):
                    self._close_channel(channel)
                continue
            key = f"{channel.id}/{request.stroke}"
            if op == "release":
                # Migration handoff: forget the session silently, then
                # ack *after* this batch's decisions route — the ack
                # orders behind any still-in-flight reply for the key.
                self.pool.release(key, request.t)
                dirty = True
                released.append((channel, request.stroke))
                continue
            if op == "pin":
                line, applied = self._pin(channel, key, request)
                dirty = dirty or applied
                if line is not None:
                    if not channel.closed and not channel._push(line):
                        self._close_channel(channel)
                continue
            if op == "down":
                self.pool.down(key, request.x, request.y, request.t)
            elif op == "move":
                self.pool.move(key, request.x, request.y, request.t)
            else:
                self.pool.up(key, request.x, request.y, request.t)
            if self._record is not None:
                self._record.write(
                    json.dumps(
                        {
                            "rec": "op",
                            "op": op,
                            "user": channel.id,
                            "stroke": key,
                            "x": request.x,
                            "y": request.y,
                            "t": request.t,
                        }
                    )
                    + "\n"
                )
            dirty = True
            if request.t > latest:
                latest = request.t
        self._latest = latest
        for key in kills:
            self.pool.kill(
                key, latest if latest != float("-inf") else self.pool.clock.now
            )
            dirty = True
        if dirty:
            decisions.extend(self.pool.flush())
        for decision in decisions:
            self._route(decision)
        for channel, stroke in released:
            line = json.dumps({"kind": "released", "stroke": stroke})
            if not channel.closed and not channel._push(line):
                self._close_channel(channel)
        if self._record is not None:
            self._record.flush()
        if stats_requests:
            observer = self.observer
            snapshot = (
                observer.metrics.snapshot()
                if observer is not None and observer.metrics is not None
                else None
            )
            profiler = (
                getattr(observer, "profiler", None)
                if observer is not None
                else None
            )
            line = encode_stats(
                snapshot,
                t=self.pool.clock.now,
                sessions=len(self.pool),
                channels=len(self._channels),
                profile=profiler.snapshot() if profiler is not None else None,
                busy_s=round(self.busy_s, 6),
            )
            for channel in stats_requests:
                if not channel.closed and not channel._push(line):
                    self._close_channel(channel)

    def _swap(self, channel: Channel, request: Request) -> tuple[str, bool]:
        """Resolve one swap against the registry; returns (reply, applied).

        The swapped prefix is ``channel.id/user`` — users are namespaced
        per channel exactly like strokes, so one client's swap can never
        rebind another client's sessions.  The swap is buffered into the
        pool at its position in line order; the ack carries the resolved
        ``name@version``.  A registry-less server or an unknown model
        answers with an ``error`` reply and changes nothing.
        """
        if self.registry is None:
            return (
                encode_error("swap unsupported: no registry", t=request.t),
                False,
            )
        name, _, version = request.model.partition("@")
        try:
            recognizer = self.registry.load(name, version or None)
            resolved = version or self.registry.latest_version(name)
        except (KeyError, OSError, ValueError) as exc:
            return encode_error(f"swap failed: {exc}", t=request.t), False
        label = f"{name}@{resolved}"
        self.pool.swap_model(
            f"{channel.id}/{request.user}", recognizer, request.t, label=label
        )
        return encode_swap(request.user, label, request.t), True

    def _load_label(self, label: str):
        """Registry loader for the pool's bounded model cache."""
        name, _, version = label.partition("@")
        return self.registry.load(name, version or None)

    def _pin(
        self, channel: Channel, key: str, request: Request
    ) -> tuple[str | None, bool]:
        """One-shot model pin for ``key``'s next open; (reply, applied).

        Success is silent — the router replays pins ahead of a migrated
        journal and absorbs no ack.  ``model: ""`` pins the default
        model and needs no registry; anything else resolves like a
        swap, answering an ``error`` reply on failure.
        """
        if not request.model:
            self.pool.pin(key, None, request.t)
            return None, True
        if self.registry is None:
            return (
                encode_error(
                    "pin unsupported: no registry",
                    stroke=request.stroke,
                    t=request.t,
                ),
                False,
            )
        name, _, version = request.model.partition("@")
        try:
            recognizer = self.registry.load(name, version or None)
        except (KeyError, OSError, ValueError) as exc:
            return (
                encode_error(
                    f"pin failed: {exc}", stroke=request.stroke, t=request.t
                ),
                False,
            )
        self.pool.pin(key, recognizer, request.t, label=request.model)
        return None, True

    def _route(self, decision: Decision) -> None:
        channel_id, _, stroke = decision.key.partition("/")
        channel = self._channels.get(channel_id)
        if channel is None or channel.closed:
            return
        if not channel._push(encode_decision(decision, stroke)):
            # Documented backpressure policy: a consumer that stops
            # reading loses its channel, not the whole server.
            self._close_channel(channel)

    def _close_channel(self, channel: Channel) -> None:
        if channel.closed:
            return
        channel.closed = True
        self._channels.pop(channel.id, None)
        channel._push_close()

    # -- TCP ------------------------------------------------------------------

    def _frame_error(self, kind: str, mode: str) -> str:
        if kind == "overflow":
            if mode == "lp1":
                return encode_error(f"frame exceeds {self.max_frame} bytes")
            return encode_error(f"line exceeds {self.max_line} bytes")
        if kind == "garbage":
            return encode_error("bad frame magic")
        return encode_error("truncated frame")

    def _bad_request_reply(self, line: bytes, exc: ProtocolError) -> str:
        """The error reply for one undecodable line.

        A ``hello`` arriving after the first line is the one case that
        deserves a more specific message than ``unknown op: 'hello'`` —
        framing cannot be renegotiated mid-connection (replies already
        in flight would straddle the switch), and the error should say
        so.  Only the (rare) error path pays the re-parse.
        """
        if b'"hello"' in line:
            try:
                payload = json.loads(line)
            except ValueError:
                payload = None
            if isinstance(payload, dict) and payload.get("op") == "hello":
                reply, _ = negotiate(
                    payload, first=False, allow_lp1=self.allow_lp1
                )
                return reply
        return encode_error(str(exc))

    async def _handle_connection(self, reader, writer) -> None:
        channel = await self.open_channel()
        wire = _Wire()
        drain_task = asyncio.get_running_loop().create_task(
            self._drain_replies(channel, writer, wire)
        )
        frames = LineReader(reader, self.max_line)
        first = True  # no event processed yet: a hello can still switch
        try:
            eof = False
            while not channel.closed and not eof:
                if first:
                    # One event at a time until the framing is settled:
                    # bytes after a hello line are frames, not lines,
                    # and must not be consumed by the line scanner.
                    events = [await frames.next()]
                else:
                    events = await frames.next_batch()
                for kind, line in events:
                    if kind == "eof":
                        eof = True
                        break
                    if kind != "line":
                        first = False
                        # One bad line/frame is not a reason to lose
                        # every other in-flight stroke: report it and
                        # keep the connection.
                        if not channel._push(self._frame_error(kind, wire.mode)):
                            eof = True
                            break
                        continue
                    line = line.strip()
                    if not line:
                        continue
                    if first:
                        first = False
                        if line.startswith(b"{") and b'"hello"' in line:
                            try:
                                payload = json.loads(line)
                            except ValueError:
                                payload = None
                            if (
                                isinstance(payload, dict)
                                and payload.get("op") == "hello"
                            ):
                                reply, new_mode = negotiate(
                                    payload,
                                    first=True,
                                    allow_lp1=self.allow_lp1,
                                )
                                if new_mode == "lp1":
                                    # The ack is the first lp1 frame;
                                    # bytes the line scanner had already
                                    # buffered are frames.
                                    wire.mode = "lp1"
                                    frames = FrameReader(
                                        reader,
                                        self.max_frame,
                                        initial=frames.take_buffer(),
                                    )
                                if not channel._push(reply):
                                    eof = True
                                    break
                                continue
                    try:
                        request = decode_request(line)
                    except ProtocolError as exc:
                        if not channel._push(self._bad_request_reply(line, exc)):
                            eof = True
                            break
                        continue
                    await channel.send(request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._close_channel(channel)
            with suppress(asyncio.CancelledError):
                await drain_task
            writer.close()
            with suppress(ConnectionError):
                await writer.wait_closed()

    async def _drain_replies(self, channel: Channel, writer, wire=None) -> None:
        mode = wire if wire is not None else _Wire()
        with suppress(ConnectionError):
            closing = False
            while not closing:
                line = await channel.recv()
                if line is None:
                    break
                # Coalesce everything already queued into one write():
                # replies leave in one syscall per pump pass, not one
                # per decision.
                batch = [line]
                while True:
                    try:
                        item = channel._outbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is _CLOSE:
                        closing = True
                        break
                    batch.append(item)
                if mode.mode == "lp1":
                    data = encode_frames(l.encode() for l in batch)
                else:
                    data = b"".join(l.encode() + b"\n" for l in batch)
                writer.write(data)
                await writer.drain()
