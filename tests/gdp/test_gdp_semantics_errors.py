"""Edge-case tests for GDP semantics: wrong views, empty targets."""

import pytest

from repro.gdp import build_gdp_semantics
from repro.geometry import Stroke
from repro.interaction import GestureContext
from repro.mvc import View


class NotACanvasView(View):
    pass


class FakeDispatch:
    pass


def make_context(class_name, view):
    return GestureContext(
        view=view,
        dispatch=FakeDispatch(),
        gesture=Stroke.from_xy([(10, 10), (20, 20), (30, 10)], dt=0.01),
        class_name=class_name,
    )


class TestWrongView:
    @pytest.mark.parametrize(
        "class_name", ["rect", "line", "ellipse", "group", "delete", "move"]
    )
    def test_non_canvas_view_raises_type_error(self, class_name):
        semantics = build_gdp_semantics()[class_name]
        context = make_context(class_name, NotACanvasView())
        with pytest.raises(TypeError, match="canvas view"):
            semantics.on_recognized(context)


class TestEmptyTargets:
    """Object gestures aimed at empty space must not crash."""

    @pytest.fixture
    def app(self, gdp_recognizer):
        from repro.gdp import GDPApp

        return GDPApp(recognizer=gdp_recognizer, use_eager=False)

    @pytest.mark.parametrize(
        "class_name", ["move", "copy", "rotate-scale", "edit", "dot"]
    )
    def test_object_gesture_on_empty_canvas(self, app, class_name):
        semantics = build_gdp_semantics()[class_name]
        context = make_context(class_name, app.view)
        semantics.on_recognized(context)  # no exception
        # manip on a None recog result must be a no-op, not a crash.
        semantics.on_manipulate(context)
        semantics.on_done(context)
        assert len(app.shapes) == 0

    def test_group_on_empty_canvas_creates_empty_group(self, app):
        semantics = build_gdp_semantics()["group"]
        context = make_context("group", app.view)
        semantics.on_recognized(context)
        assert len(app.shapes) == 1  # an empty composite
        semantics.on_manipulate(context)  # touching nothing: no-op

    def test_dot_on_empty_canvas_clears_selection(self, app):
        rect = app.canvas.create_rect(600, 500, 650, 550)
        app.canvas.select(rect)
        semantics = build_gdp_semantics()["dot"]
        context = make_context("dot", app.view)
        semantics.on_recognized(context)
        assert app.canvas.selection == set()
