"""Tests for the sample datasets shipped under data/."""

from pathlib import Path

import pytest

from repro.datasets import GestureSet
from repro.recognizer import GestureClassifier

DATA_DIR = Path(__file__).resolve().parents[2] / "data"


@pytest.mark.parametrize(
    "filename,expected_classes,expected_count",
    [
        ("gdp_sample.json", 11, 55),
        ("directions_sample.json", 8, 40),
    ],
)
def test_shipped_dataset_loads(filename, expected_classes, expected_count):
    dataset = GestureSet.load(DATA_DIR / filename)
    assert len(dataset) == expected_count
    assert len(dataset.class_names) == expected_classes
    for example in dataset:
        assert len(example.stroke) >= 2


def test_shipped_gdp_dataset_trains():
    dataset = GestureSet.load(DATA_DIR / "gdp_sample.json")
    classifier = GestureClassifier.train(dataset.strokes_by_class())
    hits = sum(
        classifier.classify(example.stroke) == example.class_name
        for example in dataset
    )
    assert hits / len(dataset) > 0.95


def test_shipped_dataset_round_trips(tmp_path):
    dataset = GestureSet.load(DATA_DIR / "directions_sample.json")
    dataset.save(tmp_path / "copy.json")
    clone = GestureSet.load(tmp_path / "copy.json")
    assert clone.to_dict() == dataset.to_dict()
