"""Harvesting labelled training examples from serving telemetry.

The personalization loop starts where serving observability ends: the
traffic journal (the ops a user actually drew), the
:class:`~repro.obs.QualityMonitor` trace (what the recognizer decided
and how confidently), and explicit user corrections.  This module joins
the three into per-user labelled examples:

* a **correction** always wins — the user told us the true class;
* an uncorrected **outlier** decision (Rubine's ``d^2 > 0.5 F^2``
  rejection rule) is *skipped*: the decided label is untrustworthy and
  there is no human label to replace it;
* a **timeout** decision, a long **ambiguous dwell**, or a thin
  **classification margin** marks a gesture the base model found hard;
  it is harvested under the decided class so retraining reinforces the
  call on this user's rendition of it;
* a healthy decision teaches nothing the base model does not already
  know, and is not harvested.

Everything is deterministic: examples come out in traffic-journal
arrival order (the order the user's ``down`` events appeared), so one
journal + one trace + one corrections file always produce the same
per-user example lists and the same :func:`harvest_hash` — the property
the incremental retrainer's cache keys and the promotion audit trail
are built on.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..hashing import content_hash

__all__ = ["AdaptStore", "harvest_hash"]

# Default thresholds: dwell is measured against the 0.2 s motionless
# timeout (three-quarters of the way there means the user sat waiting),
# and margins under 0.5 are razor-thin next to the hundreds a confident
# decision scores (see repro.obs.quality's bucket ladders).
DEFAULT_DWELL_THRESHOLD = 0.15
DEFAULT_MARGIN_THRESHOLD = 0.5


def harvest_hash(examples: list) -> str:
    """Content hash of one user's harvested example list."""
    return content_hash(examples)


class AdaptStore:
    """Join traffic, quality trace, and corrections into labelled examples.

    Feed records with :meth:`add_op` / :meth:`add_trace` /
    :meth:`add_correction` (or the ``load_*`` NDJSON readers), then call
    :meth:`harvest`.  The store never mutates its inputs and harvests
    are pure functions of them, so harvesting twice — or on another
    machine — yields identical bytes.
    """

    def __init__(
        self,
        *,
        dwell_threshold: float = DEFAULT_DWELL_THRESHOLD,
        margin_threshold: float = DEFAULT_MARGIN_THRESHOLD,
        min_points: int = 3,
    ):
        self.dwell_threshold = dwell_threshold
        self.margin_threshold = margin_threshold
        self.min_points = min_points
        # stroke key -> {"user", "points": [[x, y, t], ...]}; insertion
        # order is traffic arrival order of the stroke's down.
        self._strokes: dict[str, dict] = {}
        # stroke key -> quality trace record (rec == "quality").
        self._quality: dict[str, dict] = {}
        # (user, stroke key) -> corrected class.
        self._corrections: dict[tuple[str, str], str] = {}

    # -- ingestion -----------------------------------------------------------

    def add_op(self, record: dict) -> None:
        """One traffic-journal op: ``{"op", "user", "stroke", "x", "y", "t"}``.

        The stroke a session classifies is its ``down`` plus every
        ``move`` — ``up`` ends collection without contributing a point,
        exactly as the serving layer's gesture handler does — so the
        harvested points are bit-equal to what the recognizer saw.
        """
        op = record.get("op")
        key = record.get("stroke", "")
        if op == "down":
            self._strokes[key] = {
                "user": record.get("user", ""),
                "points": [[record["x"], record["y"], record["t"]]],
            }
        elif op == "move":
            stroke = self._strokes.get(key)
            if stroke is not None:
                stroke["points"].append(
                    [record["x"], record["y"], record["t"]]
                )
        # "up" carries no new point; anything else is not traffic.

    def add_trace(self, record: dict) -> None:
        """One observability record; only ``rec == "quality"`` ones matter."""
        if record.get("rec") == "quality":
            self._quality[record.get("session", "")] = record

    def add_correction(self, record: dict) -> None:
        """One ``{"rec": "correction", "user", "stroke", "class"}`` record."""
        if record.get("rec") == "correction":
            self._corrections[
                (record.get("user", ""), record.get("stroke", ""))
            ] = record["class"]

    def load_traffic(self, path: str | Path) -> int:
        return self._load(path, self.add_op)

    def load_traces(self, path: str | Path) -> int:
        return self._load(path, self.add_trace)

    def load_corrections(self, path: str | Path) -> int:
        return self._load(path, self.add_correction)

    @staticmethod
    def _load(path: str | Path, add) -> int:
        count = 0
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    add(json.loads(line))
                    count += 1
        return count

    # -- harvesting ----------------------------------------------------------

    def harvest(self) -> tuple[dict[str, list], dict]:
        """Label every journaled stroke; returns ``(by_user, counts)``.

        ``by_user`` maps each user id to its examples — dicts of
        ``{"stroke", "class", "points", "source"}`` in arrival order.
        ``counts`` reports what happened to every stroke, so a harvest
        that silently drops data is visible in the numbers.
        """
        by_user: dict[str, list] = {}
        counts = {
            "strokes": 0,
            "harvested": 0,
            "correction": 0,
            "timeout": 0,
            "dwell": 0,
            "margin": 0,
            "skipped_healthy": 0,
            "skipped_outlier": 0,
            "skipped_undecided": 0,
            "skipped_short": 0,
        }
        for key, stroke in self._strokes.items():
            counts["strokes"] += 1
            label, source = self._label(key, stroke)
            if label is None:
                counts[f"skipped_{source}"] += 1
                continue
            if len(stroke["points"]) < self.min_points:
                counts["skipped_short"] += 1
                continue
            by_user.setdefault(stroke["user"], []).append(
                {
                    "stroke": key,
                    "class": label,
                    "points": [list(p) for p in stroke["points"]],
                    "source": source,
                }
            )
            counts["harvested"] += 1
            counts[source] += 1
        return by_user, counts

    def _label(self, key: str, stroke: dict) -> tuple[str | None, str]:
        corrected = self._corrections.get((stroke["user"], key))
        if corrected is not None:
            return corrected, "correction"
        quality = self._quality.get(key)
        if quality is None:
            return None, "undecided"
        if quality.get("outlier"):
            return None, "outlier"
        if quality.get("reason") == "timeout":
            return quality["class"], "timeout"
        if quality.get("dwell", 0.0) >= self.dwell_threshold:
            return quality["class"], "dwell"
        if quality.get("margin", float("inf")) < self.margin_threshold:
            return quality["class"], "margin"
        return None, "healthy"
