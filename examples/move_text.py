"""The paper's motivating scenario: the move-text proofreader's gesture.

Figure 1 shows a proofreader circling characters, the tail of the mark
pointing at the destination.  §1 argues the two-phase version is better:
after the circle is recognized, a *snapping text cursor* gives live
feedback — "confirms that the gesture was indeed recognized correctly,
and allows the user to be sure of the text's destination before
committing to the operation by releasing the mouse button."

This example runs that interaction against a live text editor, then
demonstrates §6's claim that cutting the variable tail out of the
gesture makes recognition more reliable.

Run:  python examples/move_text.py
"""

from repro.events import perform_gesture
from repro.geometry import Stroke
from repro.recognizer import GestureClassifier
from repro.synth import GenerationParams, GestureGenerator
from repro.textedit import (
    CHAR_WIDTH,
    LINE_HEIGHT,
    TailedGestureGenerator,
    TextEditApp,
    TextPosition,
    editing_templates,
    train_textedit_recognizer,
)
from repro.textedit.gestures import extended_editing_templates


def circle_over(app, line, col_start, col_end, seed=3):
    """A move-text circle covering [col_start, col_end) of a line."""
    width_px = (col_end - col_start) * CHAR_WIDTH
    generator = GestureGenerator(
        {"move-text": editing_templates()["move-text"]},
        params=GenerationParams(scale=max(width_px * 1.6, 60.0)),
        seed=seed,
    )
    stroke = generator.generate("move-text").stroke
    box = stroke.bounding_box()
    cx = 20.0 + (col_start + col_end) / 2 * CHAR_WIDTH
    cy = 20.0 + (line + 0.5) * LINE_HEIGHT
    return stroke.translated(cx - box.center.x, cy - box.center.y)


def main() -> None:
    print("training the editing-gesture recognizer (on tail-free prefixes)...")
    recognizer = train_textedit_recognizer()
    app = TextEditApp(
        "the quick brown fox\njumps over the lazy dog",
        recognizer=recognizer,
        use_eager=False,
    )
    print(f"\nbuffer before:\n  {app.buffer.lines[0]}\n  {app.buffer.lines[1]}")

    # Phase 1 (collection): circle the word "quick".
    stroke = circle_over(app, line=0, col_start=4, col_end=9)
    # Phase 2 (manipulation): drag toward the end of line 2.  The mouse
    # wanders loosely; the cursor snaps to legal slots the whole way.
    dest_x, dest_y = app.buffer.position_to_xy(TextPosition(1, 23))
    wander = Stroke.from_xy(
        [(dest_x - 60, dest_y - 25), (dest_x + 33, dest_y + 11)], dt=0.05
    )
    events = perform_gesture(stroke, dwell=0.3, manipulation_path=wander)

    # Drive everything but the release, to observe the snapping cursor.
    app.post(events[:-1])
    app.dispatcher.run()
    print(f"\nsnap cursor during manipulation: {app.snap_cursor}")
    app.post([events[-1]])
    app.dispatcher.run()

    print(f"action: {app.last_action}")
    print(f"\nbuffer after:\n  {app.buffer.lines[0]}\n  {app.buffer.lines[1]}")

    # §6's recognition claim, measured.
    print("\n--- why two-phase helps recognition (§6) ---")
    templates = extended_editing_templates()
    tailed = GestureClassifier.train(
        TailedGestureGenerator(templates, seed=1).generate_strokes(12)
    )
    prefix = GestureClassifier.train(
        TailedGestureGenerator(templates, seed=1).generate_strokes(
            12, strip_tails=True
        )
    )
    test = TailedGestureGenerator(templates, seed=99)
    hits_tailed = hits_prefix = n = 0
    for _ in range(30):
        example = test.generate("move-text")
        n += 1
        hits_tailed += tailed.classify(example.stroke) == "move-text"
        cut = example.stroke.subgesture(example.corner_sample_indices[0] + 1)
        hits_prefix += prefix.classify(cut) == "move-text"
    print(
        f"move-text recognized: one-shot (circle+tail) {hits_tailed}/{n}, "
        f"two-phase (circle only) {hits_prefix}/{n}"
    )


if __name__ == "__main__":
    main()
