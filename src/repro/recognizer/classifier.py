"""The user-facing full gesture classifier.

"A classifier C is a function that attempts to map g to its class c.
As C is trained on the full gestures, it is referred to here as a *full
classifier*." (section 4.2)

:class:`GestureClassifier` wraps the linear machinery with stroke-level
convenience: train from labelled :class:`~repro.geometry.Stroke` objects,
classify strokes or precomputed feature vectors, optionally reject, and
round-trip through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..features import features_of
from ..geometry import Stroke
from .linear import LinearClassifier
from .mahalanobis import MahalanobisMetric
from .rejection import RejectionPolicy, RejectionResult
from .training import TrainingResult, train_linear_classifier

__all__ = ["GestureClassifier"]


class GestureClassifier:
    """A trained full classifier over single-stroke gestures.

    The classifier may be trained on a *subset* of Rubine's thirteen
    features (the USENIX paper says "currently twelve"; the speed and
    duration features are the usual casualties): pass ``feature_indices``
    at training time and the classifier masks incoming 13-vectors itself,
    so every caller — including the eager machinery — keeps handing it
    full vectors.
    """

    def __init__(
        self,
        training: TrainingResult,
        feature_indices: Sequence[int] | None = None,
    ):
        self._training = training
        self.feature_indices = (
            None if feature_indices is None else list(feature_indices)
        )

    def _mask(self, features: np.ndarray) -> np.ndarray:
        if self.feature_indices is None:
            return features
        return np.asarray(features, dtype=float)[self.feature_indices]

    # -- construction --------------------------------------------------------

    @classmethod
    def train(
        cls,
        examples_by_class: Mapping[str, Sequence[Stroke]],
        feature_indices: Sequence[int] | None = None,
    ) -> "GestureClassifier":
        """Train from example strokes grouped by class name.

        The paper trains GDP with C = 11 classes and typically 15 examples
        per class; any counts work as long as every class is non-empty.
        ``feature_indices`` restricts training (and classification) to a
        subset of the 13 features.
        """
        if feature_indices is not None:
            indices = list(feature_indices)
            if not indices:
                raise ValueError("feature_indices must not be empty")
            vectors = {
                name: [features_of(s)[indices] for s in strokes]
                for name, strokes in examples_by_class.items()
            }
            return cls(train_linear_classifier(vectors), indices)
        vectors = {
            name: [features_of(s) for s in strokes]
            for name, strokes in examples_by_class.items()
        }
        return cls(train_linear_classifier(vectors))

    # -- introspection --------------------------------------------------------

    @property
    def class_names(self) -> list[str]:
        return self._training.classifier.class_names

    @property
    def linear(self) -> LinearClassifier:
        """The underlying evaluation functions (mutable constants)."""
        return self._training.classifier

    @property
    def metric(self) -> MahalanobisMetric:
        """The shared Mahalanobis metric (used by the eager trainer)."""
        return self._training.metric

    @property
    def means(self) -> np.ndarray:
        """Per-class mean feature vectors, one row per class."""
        return self._training.means

    def mean_of(self, class_name: str) -> np.ndarray:
        return self._training.mean_of(class_name)

    # -- classification --------------------------------------------------------

    def classify(self, gesture: Stroke) -> str:
        """Map a gesture to the name of its most likely class."""
        return self._training.classifier.classify(
            self._mask(features_of(gesture))
        )

    def classify_features(self, features: np.ndarray) -> str:
        """Classify a precomputed (full 13-dim) feature vector.

        This is the eager fast path; the classifier applies its own
        feature mask, if any.
        """
        return self._training.classifier.classify(self._mask(features))

    def classify_features_many(
        self, features: np.ndarray, extra_tolerance: np.ndarray | None = None
    ) -> list[str]:
        """Classify a stack of precomputed full 13-dim feature vectors.

        Bit-identical to ``[classify_features(f) for f in features]``
        (see :meth:`~repro.recognizer.LinearClassifier.classify_many`)
        but evaluated with one matrix product — the batched hot path of
        :mod:`repro.serve`.  The classifier applies its own feature
        mask, if any, as a column selection.
        """
        features = np.asarray(features, dtype=float)
        if self.feature_indices is not None:
            features = features[:, self.feature_indices]
        return self._training.classifier.classify_many(
            features, extra_tolerance
        )

    def classify_with_rejection(
        self, gesture: Stroke, policy: RejectionPolicy | None = None
    ) -> RejectionResult:
        """Classify, refusing ambiguous or outlier gestures."""
        if policy is None:
            policy = RejectionPolicy.rubine_default(
                self._training.classifier.num_features
            )
        return policy.apply(
            self._training.classifier,
            self._training.metric,
            self._training.means,
            self._mask(features_of(gesture)),
        )

    def evaluations(self, gesture: Stroke) -> dict[str, float]:
        """Per-class evaluation scores, for inspection and debugging."""
        v = self._training.classifier.evaluations(
            self._mask(features_of(gesture))
        )
        return dict(zip(self.class_names, v.tolist()))

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "classifier": self._training.classifier.to_dict(),
            "means": self._training.means.tolist(),
            "metric": self._training.metric.to_dict(),
            "feature_indices": self.feature_indices,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GestureClassifier":
        return cls(
            TrainingResult(
                classifier=LinearClassifier.from_dict(data["classifier"]),
                means=np.array(data["means"], dtype=float),
                metric=MahalanobisMetric.from_dict(data["metric"]),
            ),
            feature_indices=data.get("feature_indices"),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "GestureClassifier":
        return cls.from_dict(json.loads(Path(path).read_text()))
