"""Figure 8 — Buxton's note gestures are not amenable to eager recognition.

"Because all but the last gesture is approximately a subgesture of the
one to its right, these gestures would always be considered ambiguous by
the eager recognizer, and thus would never be eagerly recognized."

The reproduction trains an eager recognizer on the five nested note
classes and measures eagerness per class: the nested (prefix) classes
must be (almost) never eagerly recognized, in stark contrast to the
direction-pair classes of figure 9.
"""

import pytest
from conftest import TEST_PER_CLASS, TRAIN_PER_CLASS, write_report

from repro.eager import train_eager_recognizer
from repro.synth import GestureGenerator, note_templates

# All classes except the longest are prefixes of another class.
PREFIX_CLASSES = ("quarter", "eighth", "sixteenth", "thirtysecond")


@pytest.fixture(scope="module")
def notes_experiment():
    train = GestureGenerator(note_templates(), seed=61).generate_strokes(
        TRAIN_PER_CLASS
    )
    try:
        report = train_eager_recognizer(train)
    except ValueError:
        # Even stronger than the paper's claim: not a single training
        # subgesture was unambiguous.
        return None
    return report


def test_fig8_notes_never_eager(notes_experiment):
    if notes_experiment is None:
        write_report(
            "fig8_notes_no_eagerness",
            "Figure 8 reproduction: note gestures\n"
            "No training subgesture was unambiguous at all — the gesture\n"
            "set is not amenable to eager recognition (paper's claim).",
        )
        return
    recognizer = notes_experiment.recognizer
    test_gen = GestureGenerator(note_templates(), seed=62)
    rows = ["Figure 8 reproduction: eagerness per note class",
            f"({TEST_PER_CLASS} test gestures per class)",
            ""]
    eager_counts = {}
    fraction_seen = {}
    for class_name in recognizer.class_names:
        eager = 0
        fractions = []
        for _ in range(TEST_PER_CLASS):
            result = recognizer.recognize(test_gen.generate(class_name).stroke)
            eager += result.eager
            fractions.append(result.fraction_seen)
        eager_counts[class_name] = eager
        fraction_seen[class_name] = sum(fractions) / len(fractions)
        rows.append(
            f"{class_name:>14}: eagerly recognized "
            f"{eager}/{TEST_PER_CLASS}, "
            f"mean fraction seen {fraction_seen[class_name]:6.1%}"
        )
    rows.append("")
    rows.append(
        "paper: the nested note gestures 'would never be eagerly recognized'"
    )
    rows.append(
        "(only the longest class, whose final flag is unique, may commit "
        "before the stroke ends)"
    )
    write_report("fig8_notes_no_eagerness", "\n".join(rows))

    # The deeply nested classes are (essentially) never eager, and even
    # the shallower prefixes are examined nearly in full — in contrast to
    # the ~60-70% of figure 9/10.  (Synthetic noise keeps the boundary
    # classes from the paper's idealized absolute zero.)
    assert eager_counts["quarter"] + eager_counts["eighth"] <= max(
        2, TEST_PER_CLASS // 10
    )
    prefix_fraction = sum(fraction_seen[c] for c in PREFIX_CLASSES) / len(
        PREFIX_CLASSES
    )
    assert prefix_fraction > 0.9


def test_fig8_contrast_with_fig9(notes_experiment, fig9_experiment):
    """The same algorithm is eager on figure 9's classes and not here."""
    _, fig9_result, _ = fig9_experiment
    assert fig9_result.eagerness.eager_rate > 0.8
    if notes_experiment is None:
        return
    recognizer = notes_experiment.recognizer
    test_gen = GestureGenerator(note_templates(), seed=63)
    eager = total = 0
    for class_name in PREFIX_CLASSES:
        for _ in range(10):
            total += 1
            eager += recognizer.recognize(
                test_gen.generate(class_name).stroke
            ).eager
    assert eager / total < fig9_result.eagerness.eager_rate / 4


def test_fig8_training_detects_ambiguity(benchmark):
    """Benchmark: training on a fully-nested set (the pathological case)."""
    train = GestureGenerator(note_templates(), seed=64).generate_strokes(
        TRAIN_PER_CLASS
    )

    def train_or_reject():
        try:
            return train_eager_recognizer(train)
        except ValueError:
            return None

    benchmark(train_or_reject)
