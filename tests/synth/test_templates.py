"""Unit tests for gesture templates and the template families."""

import math

import pytest

from repro.synth import (
    EIGHT_DIRECTION_CLASSES,
    GDP_CLASS_NAMES,
    NOTE_CLASS_NAMES,
    GestureTemplate,
    arc_waypoints,
    direction_pair_template,
    eight_direction_templates,
    gdp_templates,
    note_templates,
    ud_templates,
)


class TestGestureTemplate:
    def test_rejects_empty_waypoints(self):
        with pytest.raises(ValueError):
            GestureTemplate(name="x", waypoints=())

    def test_rejects_non_interior_corner(self):
        with pytest.raises(ValueError):
            GestureTemplate(
                name="x", waypoints=((0, 0), (1, 0)), corner_indices=(0,)
            )
        with pytest.raises(ValueError):
            GestureTemplate(
                name="x", waypoints=((0, 0), (1, 0), (1, 1)), corner_indices=(2,)
            )

    def test_is_dot(self):
        assert GestureTemplate(name="dot", waypoints=((0, 0),)).is_dot
        assert not GestureTemplate(name="l", waypoints=((0, 0), (1, 1))).is_dot

    def test_path_length(self):
        t = GestureTemplate(name="L", waypoints=((0, 0), (3, 0), (3, 4)))
        assert t.path_length() == pytest.approx(7.0)

    def test_arc_length_at(self):
        t = GestureTemplate(name="L", waypoints=((0, 0), (3, 0), (3, 4)))
        assert t.arc_length_at(0) == 0.0
        assert t.arc_length_at(1) == pytest.approx(3.0)
        assert t.arc_length_at(2) == pytest.approx(7.0)

    def test_arc_length_out_of_range(self):
        t = GestureTemplate(name="l", waypoints=((0, 0), (1, 1)))
        with pytest.raises(ValueError):
            t.arc_length_at(5)


class TestArcWaypoints:
    def test_point_count(self):
        assert len(arc_waypoints(0, 0, 1, 0, math.pi, steps=10)) == 11

    def test_points_on_circle(self):
        for x, y in arc_waypoints(5, 5, 2, 0, 2 * math.pi, steps=16):
            assert math.hypot(x - 5, y - 5) == pytest.approx(2.0)

    def test_start_angle_respected(self):
        first = arc_waypoints(0, 0, 1, math.pi / 2, math.pi, steps=4)[0]
        assert first[0] == pytest.approx(0.0, abs=1e-12)
        assert first[1] == pytest.approx(1.0)

    def test_zero_steps_rejected(self):
        with pytest.raises(ValueError):
            arc_waypoints(0, 0, 1, 0, 1, steps=0)


class TestDirectionFamilies:
    def test_eight_classes(self):
        templates = eight_direction_templates()
        assert set(templates) == set(EIGHT_DIRECTION_CLASSES)
        assert len(templates) == 8

    def test_each_has_one_corner(self):
        for template in eight_direction_templates().values():
            assert template.corner_indices == (1,)
            assert len(template.waypoints) == 3

    def test_direction_semantics(self):
        # "ur" = up then right, under y-down screen coordinates.
        t = direction_pair_template("ur")
        (x0, y0), (x1, y1), (x2, y2) = t.waypoints
        assert y1 < y0  # first segment goes up (negative y)
        assert x2 > x1  # second segment goes right

    def test_shared_prefixes(self):
        # ur and ul share their initial upward segment — the ambiguity
        # eager recognition must respect.
        ur = direction_pair_template("ur")
        ul = direction_pair_template("ul")
        assert ur.waypoints[1] == ul.waypoints[1]

    def test_first_fraction(self):
        t = direction_pair_template("ru", first_fraction=0.8)
        assert t.arc_length_at(1) == pytest.approx(0.8)

    def test_invalid_names(self):
        with pytest.raises(ValueError):
            direction_pair_template("xx")
        with pytest.raises(ValueError):
            direction_pair_template("u")

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            direction_pair_template("ur", first_fraction=1.0)

    def test_ud_family(self):
        templates = ud_templates()
        assert set(templates) == {"U", "D"}
        # Both start rightward; they diverge at the corner.
        assert templates["U"].waypoints[1] == templates["D"].waypoints[1]
        assert templates["U"].waypoints[2][1] < templates["D"].waypoints[2][1]


class TestGdpFamily:
    def test_eleven_classes(self):
        templates = gdp_templates()
        assert set(templates) == set(GDP_CLASS_NAMES)
        assert len(templates) == 11

    def test_dot_is_degenerate(self):
        assert gdp_templates()["dot"].is_dot

    def test_group_is_nearly_closed(self):
        group = gdp_templates()["group"]
        (x0, y0), (xn, yn) = group.waypoints[0], group.waypoints[-1]
        assert math.hypot(xn - x0, yn - y0) < 0.5 * group.path_length()

    def test_group_is_clockwise(self):
        # §5: "the group gesture was trained clockwise".  Under y-down
        # coordinates, clockwise paths have positive signed area sum.
        group = gdp_templates()["group"]
        pts = group.waypoints
        signed = sum(
            (bx - ax) * (by + ay) / 2.0
            for (ax, ay), (bx, by) in zip(pts, pts[1:])
        )
        assert signed < 0  # shoelace under y-down: clockwise is negative

    def test_all_names_match_keys(self):
        for name, template in gdp_templates().items():
            assert template.name == name


class TestNoteFamily:
    def test_five_classes(self):
        assert set(note_templates()) == set(NOTE_CLASS_NAMES)

    def test_nesting(self):
        # Figure 8's defining property: each note is a strict prefix of
        # the next shorter note's gesture.
        templates = note_templates()
        ordered = [templates[name] for name in NOTE_CLASS_NAMES]
        for shorter, longer in zip(ordered, ordered[1:]):
            assert (
                longer.waypoints[: len(shorter.waypoints)] == shorter.waypoints
            )

    def test_lengths_strictly_increase(self):
        templates = note_templates()
        lengths = [templates[name].path_length() for name in NOTE_CLASS_NAMES]
        assert lengths == sorted(lengths)
        assert len(set(lengths)) == len(lengths)
