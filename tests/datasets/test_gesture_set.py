"""Unit tests for gesture datasets."""

import pytest

from repro.datasets import GestureExample, GestureSet
from repro.geometry import Stroke
from repro.synth import GestureGenerator, ud_templates


@pytest.fixture
def small_set() -> GestureSet:
    generator = GestureGenerator(ud_templates(), seed=11)
    return GestureSet.from_generator("ud", generator, 5)


class TestGestureExample:
    def test_from_generated_carries_ground_truth(self):
        generator = GestureGenerator(ud_templates(), seed=12)
        generated = generator.generate("U")
        example = GestureExample.from_generated(generated)
        assert example.class_name == "U"
        assert example.corner_indices == generated.corner_sample_indices
        assert example.oracle_points == generated.oracle_points

    def test_oracle_none_without_corners(self):
        example = GestureExample(
            stroke=Stroke.from_xy([(0, 0), (1, 1)]), class_name="x"
        )
        assert example.oracle_points is None

    def test_round_trip(self):
        example = GestureExample(
            stroke=Stroke.from_xy([(0, 0), (5, 5), (10, 0)], dt=0.02),
            class_name="zig",
            corner_indices=(1,),
        )
        clone = GestureExample.from_dict(example.to_dict())
        assert clone == example


class TestGestureSet:
    def test_from_generator_counts(self, small_set):
        assert len(small_set) == 10  # 2 classes x 5
        assert set(small_set.class_names) == {"U", "D"}

    def test_by_class(self, small_set):
        grouped = small_set.by_class()
        assert len(grouped["U"]) == 5
        assert len(grouped["D"]) == 5

    def test_strokes_by_class_shape(self, small_set):
        strokes = small_set.strokes_by_class()
        assert all(
            isinstance(s, Stroke) for items in strokes.values() for s in items
        )

    def test_from_strokes(self):
        gesture_set = GestureSet.from_strokes(
            "manual", {"a": [Stroke.from_xy([(0, 0), (1, 1)])]}
        )
        assert len(gesture_set) == 1
        assert gesture_set.examples[0].class_name == "a"

    def test_add(self):
        gesture_set = GestureSet("empty")
        gesture_set.add(
            GestureExample(Stroke.from_xy([(0, 0)]), class_name="x")
        )
        assert len(gesture_set) == 1


class TestSplit:
    def test_split_counts(self, small_set):
        split = small_set.split(train_per_class=3)
        assert len(split.train) == 6
        assert len(split.test) == 4

    def test_split_is_disjoint_and_complete(self, small_set):
        split = small_set.split(train_per_class=3)
        train_strokes = {id(e) for e in split.train}
        test_strokes = {id(e) for e in split.test}
        assert not train_strokes & test_strokes
        assert len(train_strokes | test_strokes) == len(small_set)

    def test_split_preserves_order(self, small_set):
        split = small_set.split(train_per_class=2)
        first_u = [e for e in small_set if e.class_name == "U"][:2]
        train_u = [e for e in split.train if e.class_name == "U"]
        assert train_u == first_u

    def test_oversized_train_leaves_empty_test(self, small_set):
        split = small_set.split(train_per_class=100)
        assert len(split.test) == 0
        assert len(split.train) == len(small_set)


class TestPersistence:
    def test_save_load_round_trip(self, small_set, tmp_path):
        path = tmp_path / "set.json"
        small_set.save(path)
        loaded = GestureSet.load(path)
        assert loaded.name == small_set.name
        assert len(loaded) == len(small_set)
        for original, restored in zip(small_set, loaded):
            assert restored == original

    def test_round_trip_preserves_classifier_behaviour(
        self, small_set, tmp_path
    ):
        from repro.recognizer import GestureClassifier

        path = tmp_path / "set.json"
        small_set.save(path)
        loaded = GestureSet.load(path)
        original = GestureClassifier.train(small_set.strokes_by_class())
        restored = GestureClassifier.train(loaded.strokes_by_class())
        probe = small_set.examples[0].stroke
        assert original.classify(probe) == restored.classify(probe)
