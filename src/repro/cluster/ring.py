"""A consistent hash ring mapping session keys onto worker shards.

Routing must be a pure function of the key and the shard set — the same
key must land on the same shard in the router, in a test's reference
run, and across a router restart — so the ring hashes with ``md5``
(stable across processes and platforms) rather than Python's
per-process-salted ``hash``.

Each shard owns ``replicas`` points on a 64-bit ring; a key routes to
the first shard point at or after its own hash, wrapping.  Consistent
hashing buys two things the cluster leans on:

* a crashed-and-restarted worker keeps its shard name, so its keys map
  back to it and the router's journal replay restores its sessions;
* :meth:`lookup` can *skip* draining shards — keys owned by a draining
  shard spill to their ring successor, while every other key keeps its
  old mapping, which is exactly the "stop routing new sessions, leave
  the rest alone" semantics of a graceful drain.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import md5

__all__ = ["HashRing"]


def _hash64(data: str) -> int:
    return int.from_bytes(md5(data.encode()).digest()[:8], "big")


_CACHE_CAP = 65536


class HashRing:
    """``replicas`` virtual nodes per shard on a 64-bit md5 ring.

    Lookups are memoized: the md5 + bisect walk runs once per distinct
    key, then a dict hit answers repeats.  The cache is keyed to the
    ``skip`` set in force when it was filled — any topology change
    (a shard starts or stops draining) empties it wholesale, so a stale
    route can never be served.  Memoization is an observably pure
    speedup: routing stays a function of ``(key, skip)`` alone.
    """

    def __init__(self, shards, replicas: int = 64):
        self.shards = tuple(shards)
        if not self.shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError("duplicate shard names")
        self.replicas = replicas
        points = []
        for shard in self.shards:
            for i in range(replicas):
                points.append((_hash64(f"{shard}#{i}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]
        self._cache: dict[str, str] = {}
        self._cache_skip: frozenset = frozenset()

    def lookup(self, key: str, skip=frozenset()) -> str:
        """The shard owning ``key``, skipping any shard in ``skip``.

        With every shard skipped there is nowhere to route;
        ``ValueError``.
        """
        cache = self._cache
        if skip != self._cache_skip:
            # Topology changed since the cache was filled: every cached
            # route is suspect (a key owned by a newly skipped shard
            # must spill to its successor; a key that had spilled may
            # return home).  Rebuild from scratch under the new skip.
            self._cache_skip = frozenset(skip)
            cache = self._cache = {}
        else:
            shard = cache.get(key)
            if shard is not None:
                return shard
        points = self._points
        n = len(points)
        start = bisect_right(self._hashes, _hash64(key))
        for i in range(n):
            shard = points[(start + i) % n][1]
            if shard not in skip:
                if len(cache) >= _CACHE_CAP:
                    cache.clear()
                cache[key] = shard
                return shard
        raise ValueError("every shard is draining or down; nowhere to route")
