"""Unit tests for the multi-stroke extension."""

import pytest

from repro.geometry import Point, Stroke
from repro.multistroke import (
    MULTISTROKE_CLASS_NAMES,
    MultiStrokeClassifier,
    MultiStrokeGenerator,
    MultiStrokeGesture,
    StrokeCollector,
    connect_strokes,
)


def stroke_at(t0: float, x0: float = 0.0, n: int = 5) -> Stroke:
    return Stroke(
        Point(x0 + i * 10.0, 0.0, t0 + i * 0.01) for i in range(n)
    )


class TestMultiStrokeGesture:
    def test_strokes_ordered_by_time(self):
        late, early = stroke_at(5.0), stroke_at(1.0)
        gesture = MultiStrokeGesture([late, early])
        assert gesture.strokes[0].start.t == 1.0

    def test_stroke_count(self):
        assert MultiStrokeGesture([stroke_at(0.0)]).stroke_count == 1
        assert (
            MultiStrokeGesture([stroke_at(0.0), stroke_at(1.0)]).stroke_count
            == 2
        )

    def test_empty_strokes_dropped(self):
        gesture = MultiStrokeGesture([stroke_at(0.0), Stroke()])
        assert gesture.stroke_count == 1

    def test_no_strokes_rejected(self):
        with pytest.raises(ValueError):
            MultiStrokeGesture([])


class TestConnect:
    def test_connected_preserves_all_points(self):
        a, b = stroke_at(0.0), stroke_at(1.0, x0=100.0)
        connected = connect_strokes([a, b])
        assert len(connected) == len(a) + len(b)

    def test_connected_timestamps_monotone(self):
        a, b = stroke_at(0.0), stroke_at(1.0, x0=100.0)
        times = [p.t for p in connect_strokes([a, b])]
        assert times == sorted(times)

    def test_overlapping_strokes_rejected(self):
        a, b = stroke_at(0.0, n=10), stroke_at(0.02, x0=100.0)
        with pytest.raises(ValueError, match="overlap"):
            connect_strokes([a, b])

    def test_nothing_to_connect(self):
        with pytest.raises(ValueError):
            connect_strokes([])

    def test_gesture_connected_method(self):
        gesture = MultiStrokeGesture([stroke_at(0.0), stroke_at(1.0, 50.0)])
        assert gesture.connected() == connect_strokes(gesture.strokes)


class TestCollector:
    def test_strokes_within_timeout_group(self):
        collector = StrokeCollector(timeout=0.5)
        assert collector.add_stroke(stroke_at(0.0)) is None
        # Previous stroke ends at 0.04; this starts at 0.3 — same gesture.
        assert collector.add_stroke(stroke_at(0.3)) is None
        gesture = collector.flush()
        assert gesture.stroke_count == 2

    def test_timeout_splits_gestures(self):
        collector = StrokeCollector(timeout=0.5)
        collector.add_stroke(stroke_at(0.0))
        finished = collector.add_stroke(stroke_at(5.0))
        assert finished is not None
        assert finished.stroke_count == 1
        assert collector.flush().stroke_count == 1

    def test_spatial_gap_splits_gestures(self):
        collector = StrokeCollector(timeout=10.0, max_gap_distance=50.0)
        collector.add_stroke(stroke_at(0.0))
        finished = collector.add_stroke(stroke_at(0.1, x0=1000.0))
        assert finished is not None

    def test_flush_empty_returns_none(self):
        assert StrokeCollector().flush() is None

    def test_empty_stroke_rejected(self):
        with pytest.raises(ValueError):
            StrokeCollector().add_stroke(Stroke())

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            StrokeCollector(timeout=0.0)

    def test_three_stroke_sequence(self):
        collector = StrokeCollector(timeout=0.5)
        for t0 in (0.0, 0.3, 0.6):
            assert collector.add_stroke(stroke_at(t0)) is None
        assert collector.flush().stroke_count == 3


class TestGeneratorAndClassifier:
    def test_stroke_counts_per_class(self):
        generator = MultiStrokeGenerator(seed=1)
        assert generator.generate("X").stroke_count == 2
        assert generator.generate("plus").stroke_count == 2
        assert generator.generate("arrow").stroke_count == 2
        assert generator.generate("O").stroke_count == 1

    def test_pen_up_gaps_exist(self):
        generator = MultiStrokeGenerator(seed=2)
        gesture = generator.generate("X")
        first, second = gesture.strokes
        assert second.start.t > first.end.t

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            MultiStrokeGenerator(seed=3).generate("Y")

    def test_classifier_end_to_end(self):
        train = MultiStrokeGenerator(seed=4).generate_examples(10)
        classifier = MultiStrokeClassifier.train(train)
        test = MultiStrokeGenerator(seed=5).generate_examples(10)
        hits = total = 0
        for name, gestures in test.items():
            for gesture in gestures:
                total += 1
                hits += classifier.classify(gesture) == name
        assert hits / total > 0.9

    def test_stroke_count_gating(self):
        train = MultiStrokeGenerator(seed=6).generate_examples(8)
        classifier = MultiStrokeClassifier.train(train)
        assert classifier.stroke_counts == [1, 2]
        assert set(classifier.class_names_for(2)) == {
            "X",
            "plus",
            "equals",
            "arrow",
        }
        three = MultiStrokeGesture(
            [stroke_at(0.0), stroke_at(1.0), stroke_at(2.0)]
        )
        with pytest.raises(KeyError):
            classifier.classify(three)

    def test_single_stroke_never_competes_with_x(self):
        train = MultiStrokeGenerator(seed=7).generate_examples(8)
        classifier = MultiStrokeClassifier.train(train)
        o = MultiStrokeGenerator(seed=8).generate("O")
        assert classifier.classify(o) == "O"

    def test_mixed_count_class_rejected(self):
        generator = MultiStrokeGenerator(seed=9)
        with pytest.raises(ValueError, match="mixes"):
            MultiStrokeClassifier.train(
                {"bad": [generator.generate("O"), generator.generate("X")]}
            )

    def test_collector_feeds_classifier(self):
        """End to end: raw stroke sequence -> segmentation -> classes."""
        generator = MultiStrokeGenerator(seed=10)
        classifier = MultiStrokeClassifier.train(
            MultiStrokeGenerator(seed=11).generate_examples(10)
        )
        # Two gestures drawn in sequence, 2 seconds apart.
        x = generator.generate("X")
        o = generator.generate("O")
        shift = x.strokes[-1].end.t + 2.0
        o_shifted = MultiStrokeGesture(
            [
                Stroke(Point(p.x, p.y, p.t + shift) for p in s)
                for s in o.strokes
            ]
        )
        collector = StrokeCollector(timeout=0.8)
        results = []
        for stroke in list(x.strokes) + list(o_shifted.strokes):
            finished = collector.add_stroke(stroke)
            if finished is not None:
                results.append(classifier.classify(finished))
        finished = collector.flush()
        if finished is not None:
            results.append(classifier.classify(finished))
        assert results == ["X", "O"]
