"""The full personalization loop, end to end, through the CLI.

record -> harvest -> retrain -> shadow -> promote -> hot-swap:

* ``loadgen --record --quality --trace`` journals real pool traffic;
* ``adapt`` harvests one user (corrections teach a brand-new class),
  retrains incrementally on the ``train`` run's stage cache, replays
  the shadow eval, and publishes the candidate with lineage;
* the promoted model is hot-swapped into a live :class:`GestureServer`
  and actually serves — it recognizes the user's personal class — while
  a non-adapted session's byte stream is string-equal to a no-swap run;
* the whole loop is deterministic: a second run produces the same
  candidate version and a byte-identical shadow report.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json

import pytest

from repro.cli import main
from repro.serve import GestureServer, ModelRegistry, Request, encode_swap

import math

DT = 0.01
USER = "c0"
NEW_CLASS = "my-gesture"


def spiral(scale: float, turns: int = 3, n: int = 40) -> list:
    """A three-turn spiral — a shape no gdp template resembles.

    The personal class has to be *learnable*: strokes shape-identical
    to an existing class leave the candidate preferring the incumbent
    (more examples) and the promotion gate correctly rejects.  The
    user's personal gesture is therefore genuinely novel.
    """
    pts = []
    for i in range(n):
        theta = i / n * turns * 2 * math.pi
        r = scale * (i + 5) / n
        pts.append((r * math.cos(theta), r * math.sin(theta)))
    return pts


def spiral_ops(stroke: str, scale: float, t0: float) -> list:
    pts = spiral(scale)
    ops = [
        {"rec": "op", "op": "down", "user": USER, "stroke": stroke,
         "x": pts[0][0], "y": pts[0][1], "t": t0}
    ]
    for i, (x, y) in enumerate(pts[1:], start=1):
        ops.append(
            {"rec": "op", "op": "move", "user": USER, "stroke": stroke,
             "x": x, "y": y, "t": t0 + i * DT}
        )
    x, y = pts[-1]
    ops.append(
        {"rec": "op", "op": "up", "user": USER, "stroke": stroke,
         "x": x, "y": y, "t": t0 + len(pts) * DT}
    )
    return ops


def run_cli(argv) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def loop_env(tmp_path_factory):
    """Run the CLI loop once; return every artifact the tests inspect."""
    root = tmp_path_factory.mktemp("adapt-loop")
    registry = root / "registry"
    cache = root / "cache"
    state = root / "state"
    traffic = root / "traffic.ndjson"
    trace = root / "trace.ndjson"
    corrections = root / "corrections.ndjson"

    code, _ = run_cli(
        [
            "train", "--family", "gdp", "--examples", "6", "--seed", "7",
            "--output", str(root / "rec.json"), "--cache-dir", str(cache),
            "--registry", str(registry), "--name", "gdp",
        ]
    )
    assert code == 0

    code, _ = run_cli(
        [
            "loadgen", "--family", "gdp", "--clients", "4", "--gestures",
            "2", "--examples", "6", "--seed", "7", "--mode", "batched",
            "--quality", "--trace", str(trace), "--record", str(traffic),
        ]
    )
    assert code == 0
    # The user draws their personal gesture three times after the
    # recorded run (appended to the same journal, as a serving-side
    # journal would accumulate it) and corrects each to a class the
    # base model has never seen.
    with traffic.open("a") as fh:
        for i, scale in enumerate((58.0, 60.0, 62.0)):
            for op in spiral_ops(f"p{i}", scale, t0=100.0 + i):
                fh.write(json.dumps(op) + "\n")
    corrections.write_text(
        "".join(
            json.dumps(
                {"rec": "correction", "user": USER, "stroke": f"p{i}",
                 "class": NEW_CLASS}
            )
            + "\n"
            for i in range(3)
        )
    )

    adapt_argv = [
        "adapt", "--registry", str(registry), "--base", "gdp",
        "--user", USER, "--traffic", str(traffic), "--trace", str(trace),
        "--corrections", str(corrections), "--cache-dir", str(cache),
        "--state-dir", str(state), "--json",
    ]
    code, out = run_cli(adapt_argv)
    return {
        "registry": registry,
        "state": state,
        "adapt_argv": adapt_argv,
        "code": code,
        "out": out,
    }


def parse_adapt(out: str) -> tuple[dict, str]:
    """(shadow report, published NAME@VERSION) from the CLI output."""
    report = next(
        json.loads(line) for line in out.splitlines()
        if line.startswith("{")
    )
    published = next(
        line.split()[1] for line in out.splitlines()
        if line.startswith("published ")
    )
    return report, published


def test_cli_loop_promotes_a_personal_candidate(loop_env):
    assert loop_env["code"] == 0, loop_env["out"]
    report, published = parse_adapt(loop_env["out"])
    assert report["verdict"] == "promote"
    # Only the correction-taught strokes can explain the win: the live
    # model cannot name the personal class at all.
    assert report["candidate"]["correct"] > report["live"]["correct"]
    name, _, version = published.partition("@")
    registry = ModelRegistry(loop_env["registry"])
    metadata = registry.metadata_of(name, version)
    assert metadata["source"] == "repro.adapt"
    assert metadata["lineage"]["user"] == USER
    assert metadata["lineage"]["base"]["name"] == "gdp"
    candidate = registry.load(name, version)
    assert NEW_CLASS in candidate.class_names
    # The CLI hands the operator the exact swap line for the live pool.
    swap_hint = next(
        json.loads(line.split(": ", 1)[1])
        for line in loop_env["out"].splitlines()
        if line.startswith("hot-swap a serving session pool with")
    )
    assert swap_hint == {
        "op": "swap", "user": USER, "model": published, "t": 0.0,
    }


def test_loop_is_deterministic_end_to_end(loop_env):
    code, out = run_cli(loop_env["adapt_argv"])
    assert code == 0
    report_a, published_a = parse_adapt(loop_env["out"])
    report_b, published_b = parse_adapt(out)
    # Same traces, same seed: bit-identical candidate, byte-identical
    # shadow report (the registry publish is content-addressed, so the
    # re-publish was a no-op).
    assert published_b == published_a
    assert json.dumps(report_b, sort_keys=True) == json.dumps(
        report_a, sort_keys=True
    )


def _winning_stroke(loop_env) -> list:
    """Points of a stroke the shadow eval proved the candidate wins."""
    from repro.adapt import AdaptPipeline

    report, _ = parse_adapt(loop_env["out"])
    pipeline = AdaptPipeline(
        loop_env["registry"], "gdp", state_dir=loop_env["state"]
    )
    examples = pipeline.load_state(USER)["examples"]
    idx = next(
        i for i, entry in enumerate(report["per_stroke"])
        if entry["candidate"]["correct"]
        and entry["candidate"]["class"] == NEW_CLASS
    )
    return examples[idx]["points"]


async def _serve_strokes(registry, base, strokes, swap=None):
    """One channel per stroke; returns raw reply lines per stroke key.

    ``swap=(user, model)`` is sent on the first channel before any
    points move — the hot-swap path under test.
    """
    server = GestureServer(base, registry=ModelRegistry(registry))
    await server.start()
    lines: dict[str, list[str]] = {}
    try:
        channels = [await server.open_channel() for _ in strokes]
        if swap is not None:
            user, model = swap
            await channels[0].send(
                Request(op="swap", t=0.0, user=user, model=model)
            )
            ack = await asyncio.wait_for(channels[0].recv(), 5.0)
            assert ack == encode_swap(user, model, 0.0)
        for channel, (key, points) in zip(channels, strokes):
            x0, y0, t0 = points[0]
            await channel.send(Request("down", t0, key, x0, y0))
            for x, y, t in points[1:]:
                await channel.send(Request("move", t, key, x, y))
            xn, yn, tn = points[-1]
            await channel.send(Request("up", tn + DT, key, xn, yn))
            await channel.send(Request("tick", tn + 10.0))
            got = []
            while not got or json.loads(got[-1])["kind"] != "commit":
                line = await asyncio.wait_for(channel.recv(), 5.0)
                got.append(line)
            lines[key] = got
    finally:
        await server.stop()
    return lines


def test_promoted_model_hot_swaps_into_live_server(loop_env):
    _, published = parse_adapt(loop_env["out"])
    registry = ModelRegistry(loop_env["registry"])
    base = registry.load("gdp")
    points = _winning_stroke(loop_env)
    # A second, non-adapted session drawing the same shape: its stream
    # must not feel the swap.
    strokes = [("adapted/s", points), ("other/s", points)]

    swapped = asyncio.run(
        _serve_strokes(
            loop_env["registry"], base, strokes,
            swap=("adapted/", published),
        )
    )
    plain = asyncio.run(
        _serve_strokes(loop_env["registry"], base, strokes)
    )

    def recog(lines):
        return next(
            json.loads(x) for x in lines if json.loads(x)["kind"] == "recog"
        )

    # The personal class is served live, exactly where the shadow
    # replay predicted it.
    assert recog(swapped["adapted/s"])["class"] == NEW_CLASS
    assert recog(plain["adapted/s"])["class"] != NEW_CLASS
    # Byte-for-byte: the swap is invisible to everyone else.
    assert swapped["other/s"] == plain["other/s"]
