"""Strokes — the gesture data type.

Section 4.1 of the paper defines a gesture as a sequence of points and the
*i-th subgesture* ``g[i]`` as the prefix consisting of the first ``i``
points (figure 4).  :class:`Stroke` implements exactly that algebra:
indexing with an int returns a point, slicing is restricted to prefixes via
:meth:`subgesture`, and ``len`` gives ``|g|``.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from .bbox import BoundingBox
from .point import Point
from .transform import Affine

__all__ = ["Stroke"]


class Stroke(Sequence[Point]):
    """An immutable sequence of timed points.

    ``Stroke`` is the on-the-wire unit of the whole library: the event
    player emits one, feature extraction consumes one, the training set is
    a list of labelled ones.
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[Point] = ()):
        self._points: tuple[Point, ...] = tuple(points)

    @classmethod
    def from_xy(
        cls,
        xys: Iterable[tuple[float, float]],
        dt: float = 0.01,
        t0: float = 0.0,
    ) -> "Stroke":
        """Build a stroke from bare ``(x, y)`` pairs, spacing times ``dt`` apart."""
        return cls(Point(x, y, t0 + i * dt) for i, (x, y) in enumerate(xys))

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Stroke(self._points[index])
        return self._points[index]

    def __eq__(self, other) -> bool:
        return isinstance(other, Stroke) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"Stroke({len(self)} points)"

    # -- the subgesture algebra (paper section 4.1) ------------------------

    def subgesture(self, i: int) -> "Stroke":
        """The paper's ``g[i]``: the prefix holding the first ``i`` points.

        Raises:
            ValueError: if ``i`` exceeds ``|g|`` — the paper declares
                ``g[i]`` undefined for ``i > |g|``.
        """
        if i < 0 or i > len(self):
            raise ValueError(f"subgesture g[{i}] undefined for |g| = {len(self)}")
        return Stroke(self._points[:i])

    def subgestures(self, start: int = 1) -> Iterator["Stroke"]:
        """Yield every subgesture ``g[start] .. g[|g|]`` in increasing size."""
        for i in range(start, len(self) + 1):
            yield self.subgesture(i)

    def is_prefix_of(self, other: "Stroke") -> bool:
        """True if this stroke is ``other[i]`` for some ``i``."""
        return len(self) <= len(other) and other._points[: len(self)] == self._points

    # -- derived quantities ------------------------------------------------

    @property
    def start(self) -> Point:
        return self._points[0]

    @property
    def end(self) -> Point:
        return self._points[-1]

    @property
    def duration(self) -> float:
        """Elapsed time between the first and last point."""
        if len(self) < 2:
            return 0.0
        return self._points[-1].t - self._points[0].t

    def path_length(self) -> float:
        """Arc length: the sum of inter-point segment lengths (Rubine's f8)."""
        return sum(
            self._points[i].distance_to(self._points[i + 1])
            for i in range(len(self) - 1)
        )

    def bounding_box(self) -> BoundingBox:
        return BoundingBox.of(self._points)

    def centroid(self) -> Point:
        """Mean of the points; requires a non-empty stroke."""
        if not self._points:
            raise ValueError("centroid of an empty stroke")
        n = len(self._points)
        return Point(
            sum(p.x for p in self._points) / n,
            sum(p.y for p in self._points) / n,
            sum(p.t for p in self._points) / n,
        )

    # -- geometric rewrites --------------------------------------------------

    def transformed(self, transform: Affine) -> "Stroke":
        """Apply an affine map to every point."""
        return Stroke(transform.apply(p) for p in self._points)

    def translated(self, dx: float, dy: float) -> "Stroke":
        return Stroke(p.translated(dx, dy) for p in self._points)

    def retimed(self, dt: float, t0: float = 0.0) -> "Stroke":
        """Replace timestamps with a uniform sampling ``t0, t0+dt, ...``."""
        return Stroke(
            Point(p.x, p.y, t0 + i * dt) for i, p in enumerate(self._points)
        )

    def resampled(self, n: int) -> "Stroke":
        """Resample to ``n`` points equally spaced along the arc.

        Used by the template-matcher baseline; timestamps are linearly
        interpolated alongside positions.  A stroke with fewer than two
        distinct points is replicated.
        """
        if n < 1:
            raise ValueError("cannot resample to fewer than one point")
        if len(self) == 0:
            raise ValueError("cannot resample an empty stroke")
        total = self.path_length()
        if total == 0.0 or len(self) == 1 or n == 1:
            return Stroke([self._points[0]] * n)
        interval = total / (n - 1)
        out = [self._points[0]]
        travelled = 0.0
        prev = self._points[0]
        i = 1
        while len(out) < n - 1 and i < len(self._points):
            cur = self._points[i]
            seg = prev.distance_to(cur)
            if seg > 0.0 and travelled + seg >= interval * len(out) - 1e-12:
                frac = (interval * len(out) - travelled) / seg
                frac = min(max(frac, 0.0), 1.0)
                mid = Point(
                    prev.x + frac * (cur.x - prev.x),
                    prev.y + frac * (cur.y - prev.y),
                    prev.t + frac * (cur.t - prev.t),
                )
                out.append(mid)
                prev = mid
                travelled = interval * (len(out) - 1)
            else:
                travelled += seg
                prev = cur
                i += 1
        while len(out) < n:
            out.append(self._points[-1])
        return Stroke(out)

    def deduplicated(self) -> "Stroke":
        """Drop consecutive points at identical coordinates.

        Real mice repeat positions while stationary; most geometric code
        tolerates that, but corner detection is cleaner without them.
        """
        out: list[Point] = []
        for p in self._points:
            if not out or (p.x, p.y) != (out[-1].x, out[-1].y):
                out.append(p)
        return Stroke(out)

    def turn_angles(self) -> list[float]:
        """Signed turn angle at each interior point (radians, in (-pi, pi]).

        The angle at point ``p`` is between segments ``(p-1, p)`` and
        ``(p, p+1)``; zero-length segments contribute zero turn.  These are
        the ``theta_p`` values Rubine sums for f9/f10/f11.
        """
        angles: list[float] = []
        pts = self._points
        for i in range(1, len(pts) - 1):
            dx1, dy1 = pts[i].x - pts[i - 1].x, pts[i].y - pts[i - 1].y
            dx2, dy2 = pts[i + 1].x - pts[i].x, pts[i + 1].y - pts[i].y
            if (dx1 == 0.0 and dy1 == 0.0) or (dx2 == 0.0 and dy2 == 0.0):
                angles.append(0.0)
                continue
            theta = math.atan2(
                dx1 * dy2 - dy1 * dx2,  # cross product
                dx1 * dx2 + dy1 * dy2,  # dot product
            )
            angles.append(theta)
        return angles
