"""The paper's evaluation harness: metrics, protocol, figure-style reports."""

from .harness import (
    EvaluationResult,
    ExampleOutcome,
    evaluate_recognizer,
    run_experiment,
)
from .metrics import ConfusionMatrix, EagernessStats
from .stroke_art import render_eager_examples, render_eager_stroke
from .reports import (
    comparison_table,
    figure9_grid,
    labelling_diagram,
    summary_row,
)

__all__ = [
    "ConfusionMatrix",
    "EagernessStats",
    "EvaluationResult",
    "ExampleOutcome",
    "comparison_table",
    "evaluate_recognizer",
    "figure9_grid",
    "labelling_diagram",
    "render_eager_examples",
    "render_eager_stroke",
    "run_experiment",
    "summary_row",
]
