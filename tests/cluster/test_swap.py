"""Cluster hot-swap: routing, version pinning, exactly-once crash replay.

The swap travels the same single client connection as the strokes (the
router namespaces swap users per client exactly like stroke keys), so
these tests drive the cluster with a small variant of ``drive_cluster``
that can inject raw protocol lines ahead of a chosen tick.

The load-bearing claims:

* a swap rebinds one client user's *future* sessions fleet-wide while
  every other stroke's reply stream stays string-equal to the no-swap
  single-pool reference;
* the client sees exactly one ack, synthesized by the router with the
  *pinned* ``name@version`` (worker acks are absorbed);
* a SIGKILL of a shard that owns swapped sessions is invisible: the
  journal replays the swap before the replayed sessions, and the full
  reply map is byte-identical to a crash-free swapped run.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import Cluster, HashRing, reference_lines, workload_ticks
from repro.interaction import DEFAULT_TIMEOUT
from repro.serve import ModelRegistry, encode_swap

DT = 0.01


def end_time(ticks) -> float:
    return len(ticks) * DT + DEFAULT_TIMEOUT + DT


def shard_of(stroke: str, workers: int) -> str:
    return HashRing([f"w{i}" for i in range(workers)]).lookup(f"k1:{stroke}")


async def drive_with_lines(
    host,
    port,
    ticks,
    *,
    end_t,
    inject=None,
    before_tick=None,
    before_barrier=None,
    barrier_timeout: float = 120.0,
):
    """``drive_cluster`` plus raw lines injected ahead of chosen ticks.

    ``inject`` maps a tick index to a list of request dicts written
    verbatim before that tick's op group — how a swap rides the stroke
    stream at a deterministic position.  Non-stroke replies (swap acks,
    errors) land under key ``""`` like in ``drive_cluster``.
    """
    inject = inject or {}
    reader, writer = await asyncio.open_connection(host, port)
    replies: dict[str, list[str]] = {}
    stats: dict | None = None
    done = asyncio.Event()

    async def read_replies() -> None:
        nonlocal stats
        while True:
            raw = await reader.readline()
            if not raw:
                break
            obj = json.loads(raw)
            if obj.get("kind") == "stats":
                stats = obj
                done.set()
                break
            replies.setdefault(obj.get("stroke", ""), []).append(
                raw.decode().rstrip("\n")
            )

    read_task = asyncio.get_running_loop().create_task(read_replies())
    try:
        for i, (t, group) in enumerate(ticks):
            if before_tick is not None:
                await before_tick(i, t)
            out = [json.dumps(extra) for extra in inject.get(i, ())]
            out.extend(
                json.dumps({"op": name, "stroke": key, "x": x, "y": y, "t": t})
                for name, key, x, y in group
            )
            out.append(json.dumps({"op": "tick", "t": t}))
            writer.write(("\n".join(out) + "\n").encode())
            await writer.drain()
        tail = [
            json.dumps({"op": "tick", "t": end_t}),
            json.dumps({"op": "sweep", "max_idle": 0.0}),
        ]
        writer.write(("\n".join(tail) + "\n").encode())
        await writer.drain()
        if before_barrier is not None:
            await before_barrier()
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=barrier_timeout)
    finally:
        read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies, stats


@pytest.fixture(scope="session")
def swap_registry_path(directions_recognizer, tmp_path_factory):
    """A registry holding the swap candidate, as a worker-shippable path."""
    root = tmp_path_factory.mktemp("cluster-swap") / "registry"
    version = ModelRegistry(root).publish(
        "alt", directions_recognizer, metadata={}
    ).version
    return str(root), version


def recog_classes(lines) -> list[str]:
    return [
        json.loads(line)["class"]
        for line in lines
        if json.loads(line)["kind"] == "recog"
    ]


SWAP_USER = "c0g"  # prefixes both of client c0's strokes: c0g0, c0g1


def test_swap_rebinds_user_and_preserves_other_streams(
    recognizer_path,
    cluster_recognizer,
    cluster_workload,
    directions_recognizer,
    swap_registry_path,
):
    registry_root, version = swap_registry_path
    # The detector the test rests on: the candidate names no class the
    # base model knows, so every post-swap decision is attributable.
    assert not set(directions_recognizer.class_names) & set(
        cluster_recognizer.class_names
    )
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    swapped_strokes = {s for s in reference if s.startswith(SWAP_USER)}
    assert swapped_strokes  # the workload really contains client c0
    swap = {"op": "swap", "user": SWAP_USER, "model": "alt", "t": 0.0}

    async def run():
        async with Cluster(
            recognizer_path,
            workers=4,
            timeout=DEFAULT_TIMEOUT,
            registry=registry_root,
        ) as cluster:
            host, port = cluster.address
            replies, stats = await drive_with_lines(
                host, port, ticks, end_t=end_t, inject={0: [swap]}
            )
            return replies, stats, cluster.metrics.snapshot()

    replies, stats, snapshot = asyncio.run(run())
    # Exactly one ack, router-synthesized, version pinned.
    assert replies.pop("") == [encode_swap(SWAP_USER, f"alt@{version}", 0.0)]
    # Worker acks were absorbed, one per live shard.
    assert snapshot["counters"]["cluster.swap_acks_dropped"] == 4
    assert snapshot["counters"]["cluster.swaps_routed"] == 1
    # Every stroke of the swapped user was decided by the candidate...
    assert set(replies) == set(reference)
    for stroke in swapped_strokes:
        classes = recog_classes(replies[stroke])
        assert classes, stroke
        assert all(
            c in directions_recognizer.class_names for c in classes
        ), stroke
    # ...and everyone else's stream is byte-identical to the no-swap
    # single-pool reference.
    for stroke in sorted(set(reference) - swapped_strokes):
        assert replies[stroke] == reference[stroke], stroke
    assert stats["cluster"]["sessions"] == 0


def test_swap_survives_worker_crash_exactly_once(
    recognizer_path, cluster_workload, swap_registry_path
):
    registry_root, version = swap_registry_path
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    swap = {"op": "swap", "user": SWAP_USER, "model": "alt", "t": 0.0}
    # Kill the shard that owns the swapped user's *second* gesture: its
    # session opens after the restart, so a correct run proves the
    # journal replayed the swap ahead of the replayed/future sessions.
    victim = shard_of(f"{SWAP_USER}1", 4)
    mid = len(ticks) // 2

    async def run(crash: bool):
        async with Cluster(
            recognizer_path,
            workers=4,
            timeout=DEFAULT_TIMEOUT,
            registry=registry_root,
        ) as cluster:
            host, port = cluster.address
            ups_before = {}

            async def before_tick(i, t):
                if crash and i == mid:
                    await cluster.wait_all_up()
                    ups_before["n"] = cluster.router.links[victim].ups
                    assert cluster.kill(victim) is not None

            async def before_barrier():
                if crash:
                    await cluster.wait_recovered(victim, ups_before["n"])
                    await cluster.wait_all_up()

            replies, stats = await drive_with_lines(
                host,
                port,
                ticks,
                end_t=end_t,
                inject={0: [swap]},
                before_tick=before_tick,
                before_barrier=before_barrier,
            )
            return replies, stats, cluster.metrics.snapshot()

    clean, _, _ = asyncio.run(run(crash=False))
    crashed, stats, snapshot = asyncio.run(run(crash=True))
    # The crash actually happened and was healed by replay.
    assert snapshot["counters"]["cluster.worker_restarts"] >= 1
    assert snapshot["counters"]["cluster.replays"] >= 1
    # Exactly one client-facing ack even though the swap was re-applied.
    ack = [encode_swap(SWAP_USER, f"alt@{version}", 0.0)]
    assert clean.pop("") == ack
    assert crashed.pop("") == ack
    # Byte-identical reply map — swapped user included — crash and all.
    assert set(crashed) == set(clean)
    for stroke in sorted(clean):
        assert crashed[stroke] == clean[stroke], stroke
    assert stats["cluster"]["sessions"] == 0


def test_registry_less_cluster_rejects_swap(recognizer_path):
    swap = {"op": "swap", "user": "u", "model": "alt", "t": 0.0}
    ticks = [(0.0, [])]

    async def run():
        async with Cluster(
            recognizer_path, workers=2, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            replies, _ = await drive_with_lines(
                host, port, ticks, end_t=0.1, inject={0: [swap]}
            )
            return replies

    replies = asyncio.run(run())
    (line,) = replies[""]
    reply = json.loads(line)
    assert reply["kind"] == "error"
    assert "no registry" in reply["reason"]
