"""End-to-end cluster invariance, crash recovery, drain, and admin ops.

The load-bearing assertion, three ways (clean, mid-run SIGKILL, faulted
input): the per-stroke reply streams of an N-worker cluster are
*string-equal* to what one :class:`~repro.serve.SessionPool` produces
for the same input order.  Workers are real subprocesses; the crash
test kills one with SIGKILL mid-run and the supervisor + journal replay
must make the loss invisible.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import (
    Cluster,
    HashRing,
    Router,
    Supervisor,
    drive_cluster,
    reference_lines,
    workload_ticks,
)
from repro.interaction import DEFAULT_TIMEOUT
from repro.obs import FaultPlan
from repro.serve import run_load

DT = 0.01


def end_time(ticks) -> float:
    # The same drain horizon run_load uses: past the last possible
    # motionless timeout.
    return len(ticks) * DT + DEFAULT_TIMEOUT + DT


def assert_byte_identical(replies: dict, reference: dict) -> None:
    assert set(replies) == set(reference), (
        sorted(set(reference) - set(replies)),
        sorted(set(replies) - set(reference)),
    )
    for stroke in sorted(reference):
        assert replies[stroke] == reference[stroke], stroke


def shard_of(stroke: str, workers: int) -> str:
    # drive_cluster is the router's first client, so keys are "k1:...".
    return HashRing([f"w{i}" for i in range(workers)]).lookup(f"k1:{stroke}")


def test_invariance_matches_single_pool(
    recognizer_path, cluster_recognizer, cluster_workload
):
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    strokes = set(reference)
    # The workload must actually exercise the sharding for the test to
    # mean anything.
    assert len({shard_of(s, 4) for s in strokes}) >= 2

    async def run():
        async with Cluster(
            recognizer_path, workers=4, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            return await drive_cluster(host, port, ticks, end_t=end_t)

    replies, stats = asyncio.run(run())
    assert_byte_identical(replies, reference)
    # The stats barrier reply is the fleet-wide merge: worker pool
    # counters summed across shards equal the single-pool totals.
    merged = stats["metrics"]
    assert merged["counters"]["pool.sessions_opened"] == len(strokes)
    assert merged["counters"]["pool.commits"] == sum(
        1 for lines in reference.values() for line in lines
        if json.loads(line)["kind"] == "commit"
    )
    assert stats["sessions"] == 0  # everything terminal after the sweep
    assert set(stats["cluster"]["shards"]) == {"w0", "w1", "w2", "w3"}
    # The router's own namespace rides along in the merge.
    assert merged["counters"]["cluster.ops_routed"] > 0


def test_invariance_across_worker_crash(
    recognizer_path, cluster_recognizer, cluster_workload
):
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    # Kill the shard that owns the most strokes, mid-run.
    counts: dict = {}
    for stroke in reference:
        counts[shard_of(stroke, 4)] = counts.get(shard_of(stroke, 4), 0) + 1
    victim = max(counts, key=counts.get)
    mid = len(ticks) // 2

    async def run():
        async with Cluster(
            recognizer_path, workers=4, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            ups_before = {}

            async def before_tick(i, t):
                if i == mid:
                    await cluster.wait_all_up()
                    ups_before["n"] = cluster.router.links[victim].ups
                    assert cluster.kill(victim) is not None

            async def before_barrier():
                await cluster.wait_recovered(victim, ups_before["n"])
                await cluster.wait_all_up()

            replies, stats = await drive_cluster(
                host,
                port,
                ticks,
                end_t=end_t,
                before_tick=before_tick,
                before_barrier=before_barrier,
            )
            return replies, stats, cluster.metrics.snapshot()

    replies, stats, snapshot = asyncio.run(run())
    # Byte-identical per session, crash and all.
    assert_byte_identical(replies, reference)
    # The crash actually happened and was healed by replay.
    assert snapshot["counters"]["cluster.worker_restarts"] >= 1
    assert snapshot["counters"]["cluster.replays"] >= 1
    assert snapshot["counters"]["cluster.replayed_lines"] > 0
    assert stats["cluster"]["shards"][victim]["ups"] >= 2
    # Zero lost sessions: every journaled session reached terminal.
    assert stats["cluster"]["sessions"] == 0


def test_invariance_with_faulted_input(
    recognizer_path, cluster_recognizer, cluster_workload
):
    # Ground truth from the obs fault machinery: run the plan once
    # in-process and take the post-fault delivered op stream (kills off
    # — there is deliberately no remote kill op).
    plan = FaultPlan(drop=0.03, duplicate=0.03, delay=0.03, reorder=0.05)
    base = run_load(
        cluster_recognizer,
        cluster_workload,
        collect=True,
        fault_plan=plan,
        fault_seed=5,
    )
    assert base.fault_summary["dropped"] > 0
    assert base.fault_summary["duplicated"] > 0
    ticks = workload_ticks(base.delivered_log)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=base.end_t, timeout=DEFAULT_TIMEOUT
    )

    async def run():
        async with Cluster(
            recognizer_path, workers=3, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            return await drive_cluster(host, port, ticks, end_t=base.end_t)

    replies, stats = asyncio.run(run())
    assert_byte_identical(replies, reference)
    # Dropped downs produce unknown-stroke errors; they must round-trip
    # the cluster too, and their records must not leak.
    assert any(
        json.loads(line)["kind"] == "error"
        for lines in reference.values()
        for line in lines
    )
    assert stats["cluster"]["sessions"] == 0


def test_graceful_drain_via_admin_op(
    recognizer_path, cluster_recognizer, cluster_workload
):
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    mid = len(ticks) // 2

    async def admin(host, port, line: str) -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(line.encode() + b"\n")
        await writer.drain()
        reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
        writer.close()
        await writer.wait_closed()
        return reply

    async def run():
        async with Cluster(
            recognizer_path, workers=3, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address

            async def before_tick(i, t):
                if i == mid:
                    reply = await admin(
                        host, port, '{"op": "drain", "shard": "w2"}'
                    )
                    assert reply == {
                        "kind": "drain", "shard": "w2", "status": "started",
                    }

            async def before_barrier():
                while "w2" not in cluster.router.retired:
                    await asyncio.sleep(0.05)
                await cluster.wait_all_up()

            replies, _ = await drive_cluster(
                host,
                port,
                ticks,
                end_t=end_t,
                before_tick=before_tick,
                before_barrier=before_barrier,
            )
            status = await admin(host, port, '{"op": "cluster"}')
            return replies, status, cluster.metrics.snapshot()

    replies, status, snapshot = asyncio.run(run())
    assert_byte_identical(replies, reference)
    assert status["kind"] == "cluster"
    assert status["shards"]["w2"]["retired"] is True
    assert status["shards"]["w2"]["state"] == "down"
    assert status["shards"]["w0"]["state"] == "up"
    assert snapshot["counters"]["cluster.drains"] == 1
    assert snapshot["histograms"]["cluster.drain_seconds"]["count"] == 1


def test_supervisor_restarts_with_backoff(recognizer_path):
    async def run():
        async with Cluster(recognizer_path, workers=2) as cluster:
            link = cluster.router.links["w0"]
            handle = cluster.supervisor.workers["w0"]
            first_pid = handle.pid
            ups = link.ups
            assert cluster.kill("w0") == first_pid
            await cluster.wait_recovered("w0", ups)
            first_backoff = handle.backoff
            assert handle.restarts == 1
            assert handle.pid != first_pid
            # A second quick crash: backoff must grow, not hot-loop.
            ups = link.ups
            assert cluster.kill("w0") is not None
            await cluster.wait_recovered("w0", ups)
            assert handle.restarts == 2
            assert handle.backoff > first_backoff

    asyncio.run(run())


def test_timeout_boundary_rescue_survives_crash(
    recognizer_path, cluster_recognizer
):
    # Review regression, end to end: a session one barrier away from its
    # motionless timeout is rescued by a move at exactly that barrier,
    # with a peer session's op (same timestamp, different shard) routed
    # ahead of it.  The router's clock used to advance on the peer op's
    # timestamp, so the rescue move was journaled behind a t=0.2 marker;
    # replay after a crash fired a timeout the live worker never fired.
    ring = HashRing(["w0", "w1"])
    strokes = [f"s{i}" for i in range(64)]
    rescued = next(s for s in strokes if ring.lookup(f"k1:{s}") == "w0")
    peer = next(s for s in strokes if ring.lookup(f"k1:{s}") == "w1")
    ticks = [
        (0.0, [("down", peer, 0.0, 0.0), ("down", rescued, 0.0, 0.0)]),
        (0.1, [("move", peer, 5.0, 5.0)]),
        (
            DEFAULT_TIMEOUT,
            [("move", peer, 10.0, 10.0), ("move", rescued, 3.0, 3.0)],
        ),
        (0.3, [("move", peer, 15.0, 15.0)]),
        (0.4, [("up", peer, 20.0, 20.0)]),
    ]
    end_t = end_time(ticks)
    reference = reference_lines(
        cluster_recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    # The scenario only bites if the reference's rescue worked: the
    # boundary move must have counted as a gesture point.
    assert json.loads(reference[rescued][0])["points_seen"] == 2

    async def run():
        async with Cluster(
            recognizer_path, workers=2, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            ups_before = {}

            async def before_tick(i, t):
                if i == 3:  # the rescue group is journaled; now crash
                    await cluster.wait_all_up()
                    ups_before["n"] = cluster.router.links["w0"].ups
                    assert cluster.kill("w0") is not None

            async def before_barrier():
                await cluster.wait_recovered("w0", ups_before["n"])
                await cluster.wait_all_up()

            return await drive_cluster(
                host,
                port,
                ticks,
                end_t=end_t,
                before_tick=before_tick,
                before_barrier=before_barrier,
            )

    replies, stats = asyncio.run(run())
    assert_byte_identical(replies, reference)
    assert stats["cluster"]["sessions"] == 0


def test_monitor_survives_on_up_connection_failure(recognizer_path):
    # Review regression: a worker can print its ready line and die
    # before the router connects, making ``on_up`` raise.  That
    # exception used to escape the monitor task, leaving the shard
    # permanently unwatched — never marked dead, never restarted.
    calls = {"n": 0}

    async def run():
        connected = asyncio.Event()

        async def flaky_on_up(shard, host, port):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConnectionRefusedError("worker died before connect")
            connected.set()

        sup = Supervisor(
            recognizer_path, ["w0"], on_up=flaky_on_up, backoff_base=0.01
        )
        await sup.start()
        try:
            await asyncio.wait_for(connected.wait(), 30)
        finally:
            await sup.stop()
        return sup.workers["w0"].restarts

    restarts = asyncio.run(run())
    assert calls["n"] >= 2
    assert restarts >= 1


def test_drain_migrates_parked_sessions_instead_of_evicting(recognizer_path):
    # A client that opened a session and went silent used to stall the
    # drain until a deadline force-sweep evicted it.  Drain is now
    # migration: the parked session moves to a survivor immediately,
    # the shard retires promptly, nobody is evicted, and the stroke can
    # still finish afterwards on its new shard.
    victim = shard_of("s0", 2)

    async def run():
        async with Cluster(
            recognizer_path, workers=2, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"op": "down", "stroke": "s0", "x": 0, "y": 0, "t": 0.0}\n'
                b'{"op": "tick", "t": 0.0}\n'
                b'{"op": "drain", "shard": "' + victim.encode() + b'"}\n'
            )
            await writer.drain()
            drain_reply = json.loads(
                await asyncio.wait_for(reader.readline(), 30)
            )
            assert drain_reply["status"] == "started"
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30
            while victim not in cluster.router.retired:
                assert loop.time() < deadline
                await asyncio.sleep(0.02)
            # The parked session survived the drain, on another shard.
            record = cluster.router.sessions["k1:s0"]
            assert record.shard != victim
            # ...and the client can still finish the stroke there.
            writer.write(
                b'{"op": "move", "stroke": "s0", "x": 15, "y": 0, "t": 0.1}\n'
                b'{"op": "up", "stroke": "s0", "x": 30, "y": 0, "t": 0.2}\n'
                b'{"op": "tick", "t": 0.2}\n'
            )
            await writer.drain()
            reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            return reply, cluster.metrics.snapshot()

    reply, snapshot = asyncio.run(run())
    assert reply["stroke"] == "s0"
    assert reply["kind"] not in ("evict", "error")
    assert snapshot["counters"]["cluster.migrations"] == 1
    assert snapshot["histograms"]["cluster.migration_seconds"]["count"] == 1
    assert snapshot["histograms"]["cluster.drain_seconds"]["count"] == 1
    assert "cluster.drains_forced" not in snapshot["counters"]


def test_drain_completes_without_the_source_worker(recognizer_path):
    # Migration never needs the source worker: the journals live in the
    # router.  Kill the shard's process with respawn disabled, then
    # drain it — the parked session still moves (its journal replays
    # into the destination) and the drain still completes.
    victim = shard_of("s0", 2)

    async def run():
        async with Cluster(
            recognizer_path, workers=2, timeout=DEFAULT_TIMEOUT
        ) as cluster:
            host, port = cluster.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"op": "down", "stroke": "s0", "x": 0, "y": 0, "t": 0.0}\n'
                b'{"op": "tick", "t": 0.0}\n'
            )
            await writer.drain()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30
            while not cluster.router.sessions:
                assert loop.time() < deadline
                await asyncio.sleep(0.02)
            # Take the worker down for good: marking the handle retired
            # stops the supervisor from respawning after the kill.
            cluster.supervisor.workers[victim].retired = True
            cluster.kill(victim)
            writer.write(
                b'{"op": "drain", "shard": "' + victim.encode() + b'"}\n'
            )
            await writer.drain()
            reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
            assert reply["status"] == "started"
            while victim not in cluster.router.retired:
                assert loop.time() < deadline
                await asyncio.sleep(0.02)
            record = cluster.router.sessions["k1:s0"]
            assert record.shard != victim
            writer.write(
                b'{"op": "move", "stroke": "s0", "x": 15, "y": 0, "t": 0.1}\n'
                b'{"op": "up", "stroke": "s0", "x": 30, "y": 0, "t": 0.2}\n'
                b'{"op": "tick", "t": 0.2}\n'
            )
            await writer.drain()
            reply = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            return reply, cluster.metrics.snapshot()

    reply, snapshot = asyncio.run(run())
    assert reply["stroke"] == "s0"
    assert reply["kind"] not in ("evict", "error")
    assert snapshot["counters"]["cluster.migrations"] == 1
    assert snapshot["histograms"]["cluster.drain_seconds"]["count"] == 1


def test_router_rejects_malformed_lines_without_workers():
    # Protocol validation happens at the router's edge; no worker is
    # needed to test it, and a bad line must not poison the connection.
    async def run():
        router = Router(["w0"], max_line=4096)
        await router.start()
        try:
            host, port = router.address
            reader, writer = await asyncio.open_connection(host, port)

            async def ask(line: bytes) -> dict:
                writer.write(line + b"\n")
                await writer.drain()
                return json.loads(await asyncio.wait_for(reader.readline(), 10))

            bad = [
                b'{"op": "down", "stroke": "s1", "x": 1, "y"',  # truncated
                b'{"op": "merge"}',  # unknown op
                b'{"op": "down", "x": 1, "y": 2, "t": 0.1}',  # no stroke
                b'{"op": "drain"}',  # admin: unknown shard
                b'{"op": "drain", "shard": "w0"}',  # admin: no supervisor
                b"x" * 5000,  # oversized line
            ]
            for line in bad:
                reply = await ask(line)
                assert reply["kind"] == "error", (line, reply)
            # Still alive and well after all of that.
            status = await ask(b'{"op": "cluster"}')
            assert status["kind"] == "cluster"
            assert status["shards"]["w0"]["state"] == "down"
            writer.close()
            await writer.wait_closed()
        finally:
            await router.stop()

    asyncio.run(run())
