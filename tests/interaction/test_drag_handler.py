"""Unit tests for the direct-manipulation handlers."""

from repro.events import EventKind, MouseEvent
from repro.geometry import BoundingBox
from repro.interaction import ClickHandler, DragHandler
from repro.mvc import Dispatcher, Model, View


class Block(Model):
    """A draggable model."""

    def __init__(self, x=0.0, y=0.0):
        super().__init__()
        self.x, self.y = x, y

    def move_by(self, dx, dy):
        self.x += dx
        self.y += dy
        self.changed()


class BlockView(View):
    def __init__(self, block: Block, size: float = 10.0):
        super().__init__(model=block)
        self.block = block
        self.size = size

    def bounds(self):
        return BoundingBox(
            self.block.x, self.block.y,
            self.block.x + self.size, self.block.y + self.size,
        )


def press(x, y, t=0.0):
    return MouseEvent(EventKind.PRESS, x, y, t)


def move(x, y, t):
    return MouseEvent(EventKind.MOVE, x, y, t)


def release(x, y, t):
    return MouseEvent(EventKind.RELEASE, x, y, t)


class TestDragHandler:
    def make(self):
        block = Block(0, 0)
        view = BlockView(block)
        view.add_handler(DragHandler())
        return block, Dispatcher(view)

    def test_drag_moves_the_model(self):
        block, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(move(15, 8, 0.1))
        dispatcher.dispatch(release(15, 8, 0.2))
        assert (block.x, block.y) == (10, 3)

    def test_drag_accumulates_across_moves(self):
        block, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(move(10, 5, 0.1))
        dispatcher.dispatch(move(10, 10, 0.2))
        dispatcher.dispatch(release(12, 10, 0.3))
        assert (block.x, block.y) == (7, 5)

    def test_view_follows_model(self):
        block, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(move(25, 25, 0.1))
        dispatcher.dispatch(release(25, 25, 0.2))
        # The view's bounds track the model, so a new press at the new
        # location hits.
        assert (block.x, block.y) == (20, 20)

    def test_target_of_redirection(self):
        block = Block(0, 0)
        other = Block(100, 100)
        view = BlockView(block)
        view.add_handler(DragHandler(target_of=lambda v: other))
        dispatcher = Dispatcher(view)
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(release(8, 5, 0.1))
        assert (block.x, block.y) == (0, 0)
        assert (other.x, other.y) == (103, 100)

    def test_declines_when_no_target(self):
        view = BlockView(Block())
        view.add_handler(DragHandler(target_of=lambda v: None))
        dispatcher = Dispatcher(view)
        assert not dispatcher.dispatch(press(5, 5))


class TestClickHandler:
    def make(self, slop=4.0):
        clicks = []
        block = Block(0, 0)
        view = BlockView(block)
        view.add_handler(
            ClickHandler(
                on_click=lambda v, e: clicks.append((e.x, e.y)), slop=slop
            )
        )
        return clicks, Dispatcher(view)

    def test_click_fires_on_press_release(self):
        clicks, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(release(5, 5, 0.1))
        assert clicks == [(5, 5)]

    def test_small_wiggle_still_clicks(self):
        clicks, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(move(6, 6, 0.05))
        dispatcher.dispatch(release(6, 6, 0.1))
        assert len(clicks) == 1

    def test_large_motion_cancels_click(self):
        clicks, dispatcher = self.make()
        dispatcher.dispatch(press(5, 5))
        dispatcher.dispatch(move(50, 50, 0.05))
        dispatcher.dispatch(release(5, 5, 0.1))  # returns, but too late
        assert clicks == []

    def test_two_clicks_in_sequence(self):
        clicks, dispatcher = self.make()
        for t in (0.0, 1.0):
            dispatcher.dispatch(press(5, 5, t))
            dispatcher.dispatch(release(5, 5, t + 0.1))
        assert len(clicks) == 2
