"""Snapshot merging: the fleet-stats aggregation the cluster router uses."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, merge_snapshots


def _registry(counter_vals: dict, hist_obs=(), bounds=(1.0, 10.0)) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, value in counter_vals.items():
        registry.counter(name).inc(value)
    for value in hist_obs:
        registry.histogram("lat", bounds).observe(value)
    return registry


def test_counters_sum_and_union():
    a = _registry({"pool.ops": 3, "pool.commits": 1})
    b = _registry({"pool.ops": 5, "pool.errors": 2})
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {
        "pool.commits": 1,
        "pool.errors": 2,
        "pool.ops": 8,
    }


def test_histogram_buckets_add_and_minmax_combine():
    a = _registry({}, hist_obs=[0.5, 5.0])
    b = _registry({}, hist_obs=[0.7, 50.0])
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    hist = merged["histograms"]["lat"]
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(56.2)
    assert hist["min"] == 0.5
    assert hist["max"] == 50.0
    # buckets: [1.0, 10.0, null] upper bounds; counts add positionally.
    assert [count for _, count in hist["buckets"]] == [2, 1, 1]
    assert hist["buckets"][-1][0] is None


def test_merge_is_deterministic_and_key_sorted():
    a = _registry({"z": 1, "a": 2}, hist_obs=[0.1])
    b = _registry({"m": 3}, hist_obs=[2.0])
    one = merge_snapshots([a.snapshot(), b.snapshot()])
    two = merge_snapshots([a.snapshot(), b.snapshot()])
    assert one == two
    assert list(one["counters"]) == sorted(one["counters"])
    # Order of inputs must not matter either.
    assert merge_snapshots([b.snapshot(), a.snapshot()]) == one


def test_merge_skips_none_and_handles_empty():
    a = _registry({"pool.ops": 2})
    merged = merge_snapshots([None, a.snapshot(), None])
    assert merged["counters"] == {"pool.ops": 2}
    assert merge_snapshots([]) == MetricsRegistry().snapshot()


def test_merge_into_live_registry():
    registry = _registry({"pool.ops": 1}, hist_obs=[0.2])
    registry.merge(_registry({"pool.ops": 4}, hist_obs=[3.0]).snapshot())
    snapshot = registry.snapshot()
    assert snapshot["counters"]["pool.ops"] == 5
    assert snapshot["histograms"]["lat"]["count"] == 2


def test_mismatched_bucket_bounds_rejected():
    a = _registry({}, hist_obs=[0.5], bounds=(1.0, 10.0))
    b = _registry({}, hist_obs=[0.5], bounds=(2.0, 20.0))
    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_malformed_snapshot_rejected():
    registry = _registry({}, hist_obs=[0.5])
    bad = registry.snapshot()
    bad["histograms"]["lat"]["buckets"] = [[1.0, 1]]  # no +inf overflow
    with pytest.raises(ValueError):
        MetricsRegistry().merge(bad)
