"""GDP — the gesture-based drawing program (paper §2)."""

from .app import GDPApp, train_gdp_recognizer
from .canvas import Canvas
from .render import render_canvas
from .semantics import build_gdp_semantics
from .shapes import (
    ControlPoint,
    EllipseShape,
    GroupShape,
    LineShape,
    RectShape,
    Shape,
    TextShape,
)
from .views import CanvasView, ControlPointView, ShapeView

__all__ = [
    "Canvas",
    "CanvasView",
    "ControlPoint",
    "ControlPointView",
    "EllipseShape",
    "GDPApp",
    "GroupShape",
    "LineShape",
    "RectShape",
    "Shape",
    "ShapeView",
    "TextShape",
    "build_gdp_semantics",
    "render_canvas",
    "train_gdp_recognizer",
]
