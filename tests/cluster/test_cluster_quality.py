"""Fleet-wide quality telemetry: worker histograms merge in ``stats``.

With ``Cluster(quality=True)`` every worker attaches a
:class:`~repro.obs.QualityMonitor` to its own pool; the monitor's
registry-collector hook folds its staged decisions before each worker
snapshots its metrics for a ``stats`` reply, and the router merges the
per-worker snapshots.  The assertions here close the observability
loop end to end: the merged counters and per-class ``quality.*``
histograms over a sharded fleet equal (counts exactly, float sums to
merge-order rounding) what one in-process pool reports for the same
workload, and sampling partitions the fleet's decisions exactly.
"""

from __future__ import annotations

import asyncio
import math

from repro.cluster import Cluster, drive_cluster, workload_ticks
from repro.interaction import DEFAULT_TIMEOUT
from repro.obs import MetricsRegistry, PoolObserver, QualityMonitor
from repro.serve import run_load

DT = 0.01


def _cluster_stats(recognizer_path, ticks, end_t, **cluster_kw) -> dict:
    async def run():
        async with Cluster(
            recognizer_path, workers=3, timeout=DEFAULT_TIMEOUT, **cluster_kw
        ) as cluster:
            host, port = cluster.address
            _, stats = await drive_cluster(host, port, ticks, end_t=end_t)
            return stats

    return asyncio.run(run())


def _reference_quality(recognizer, workload, **monitor_kw) -> dict:
    metrics = MetricsRegistry()
    quality = QualityMonitor(recognizer, metrics=metrics, **monitor_kw)
    run_load(
        recognizer,
        workload,
        collect=True,
        observer=PoolObserver(metrics=metrics, quality=quality),
    )
    return metrics.snapshot()


def _quality_histograms(snapshot: dict) -> dict:
    return {
        name: h
        for name, h in snapshot.get("histograms", {}).items()
        if name.startswith("quality.")
    }


def test_fleet_stats_merge_quality_histograms(
    recognizer_path, cluster_recognizer, cluster_workload
):
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = len(ticks) * DT + DEFAULT_TIMEOUT + DT
    stats = _cluster_stats(recognizer_path, ticks, end_t, quality=True)
    merged = stats["metrics"]
    reference = _reference_quality(cluster_recognizer, cluster_workload)

    assert (
        merged["counters"]["quality.decisions"]
        == reference["counters"]["quality.decisions"]
        > 0
    )
    merged_q = _quality_histograms(merged)
    reference_q = _quality_histograms(reference)
    # Same classes decided fleet-wide as in one pool (the decisions are
    # byte-identical), so the same histogram names exist on both sides.
    assert set(merged_q) == set(reference_q)
    assert any(name.startswith("quality.margin.") for name in merged_q)
    assert any(name.startswith("quality.eagerness.") for name in merged_q)
    for name, h in merged_q.items():
        ref = reference_q[name]
        # Counts and bucket tallies are integers: exact across any
        # sharding.  Each value lands in the same bucket on whichever
        # worker scored it because the per-decision floats are
        # bit-identical; only the cross-worker *sum* may differ from
        # the single pool's by float-addition order.
        assert h["count"] == ref["count"], name
        assert h["buckets"] == ref["buckets"], name
        assert math.isclose(
            h["sum"], ref["sum"], rel_tol=1e-9, abs_tol=1e-12
        ), name
        assert h["min"] == ref["min"] and h["max"] == ref["max"], name


def test_fleet_sampling_partitions_decisions_exactly(
    recognizer_path, cluster_workload, cluster_recognizer
):
    """sample=0.5 across the fleet: scored + sampled-out == everything.

    The hash is keyed on the session id alone, so which worker holds a
    session cannot change its membership — the two counters partition
    the unsampled run's decision count exactly.
    """
    ticks = workload_ticks(cluster_workload, dt=DT)
    end_t = len(ticks) * DT + DEFAULT_TIMEOUT + DT
    total = _reference_quality(cluster_recognizer, cluster_workload)[
        "counters"
    ]["quality.decisions"]
    stats = _cluster_stats(
        recognizer_path, ticks, end_t,
        quality=True, quality_sample=0.5, quality_seed=3,
    )
    counters = stats["metrics"]["counters"]
    scored = counters["quality.decisions"]
    skipped = counters["quality.sampled_out"]
    assert scored + skipped == total
    assert 0 < scored < total
