"""Structured tracing: per-session spans as canonical NDJSON.

A trace is a stream of records, one JSON object per line.  Two record
shapes:

Spans — a phase of one session's life on the virtual timeline::

    {"phase":"collect","points":12,"rec":"span","session":"c0g1",
     "t0":0.03,"t1":0.14}
    {"class":"delete","eager":true,"phase":"classify","points":12,
     "rec":"span","reason":"eager","session":"c0g1","t0":0.14,"t1":0.14}
    {"phase":"manipulate","rec":"span","session":"c0g1","t0":0.14,"t1":0.3}

``phase`` is ``collect`` (first point to decision), ``classify`` (an
eager or mouse-up decision; instantaneous on the virtual timeline),
``timeout`` (a motionless-timeout decision, ``t0`` the last point,
``t1`` when the timeout fired), or ``manipulate`` (decision to commit).

Events — instantaneous happenings outside the phase structure::

    {"kind":"error","reason":"duplicate down","rec":"event",
     "session":"c7g0","t":0.4}
    {"kind":"evict","reason":"killed","rec":"event","session":"c2g1","t":1.1}

All timestamps are virtual-clock seconds, so identical input yields a
byte-identical trace: records are encoded with sorted keys and compact
separators (:func:`encode_record`), which is also the normal form the
golden-trace tests diff against.
"""

from __future__ import annotations

import json

__all__ = ["Tracer", "encode_record"]


def encode_record(record: dict) -> str:
    """One trace record in canonical NDJSON form (without the newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class Tracer:
    """Collects (or streams) trace records.

    With no ``stream``, records buffer in :attr:`records` and
    :meth:`lines` renders them; with a ``stream`` (anything with a
    ``write`` method), each record is encoded and written immediately
    and nothing is retained — the shape a long-running server wants.
    """

    def __init__(self, stream=None):
        self._stream = stream
        self.records: list[dict] = []

    def span(
        self, session: str, phase: str, t0: float, t1: float, **attrs
    ) -> None:
        record = {
            "rec": "span",
            "session": session,
            "phase": phase,
            "t0": t0,
            "t1": t1,
        }
        if attrs:
            record.update(attrs)
        self._emit(record)

    def event(self, session: str, kind: str, t: float, **attrs) -> None:
        record = {"rec": "event", "session": session, "kind": kind, "t": t}
        if attrs:
            record.update(attrs)
        self._emit(record)

    def record(self, record: dict) -> None:
        """Emit an arbitrary record (e.g. the quality monitor's
        ``"rec":"quality"`` lines) through the same buffer-or-stream path."""
        self._emit(record)

    def _emit(self, record: dict) -> None:
        if self._stream is not None:
            self._stream.write(encode_record(record) + "\n")
        else:
            self.records.append(record)

    def lines(self) -> list[str]:
        """The buffered trace in canonical NDJSON, one string per record."""
        return [encode_record(r) for r in self.records]

    def clear(self) -> None:
        self.records.clear()
