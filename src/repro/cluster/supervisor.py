"""Worker lifecycle: spawn, watch, restart with backoff, retire.

The supervisor owns the worker *processes*; the router owns the worker
*connections*.  The split keeps each side simple: the supervisor never
parses gesture protocol, the router never calls ``fork``.  They meet at
two async callbacks — ``on_up(shard, host, port)`` once a spawned worker
prints its ready line, and ``on_down(shard)`` the moment its process
exits (cleanly or not).

A worker signals liveness by heartbeat lines on stdout; a worker that
goes silent for ``heartbeat_timeout`` wall seconds is presumed hung and
killed, which funnels "hung" into the one failure path that is already
handled: process exit.  Crashed workers are restarted under exponential
backoff (doubling from ``backoff_base`` to ``backoff_max``, reset after
``healthy_after`` seconds of uptime, so a flapping worker cannot hot-loop
the host while a one-off crash restarts almost instantly).  Retired
workers — the drain path — are terminated and *not* restarted.
"""

from __future__ import annotations

import asyncio
import json
import signal
from contextlib import suppress

from .worker import DEFAULT_HEARTBEAT, worker_command, worker_env

__all__ = ["Supervisor", "WorkerHandle"]


class WorkerHandle:
    """One shard's current process and restart bookkeeping."""

    __slots__ = (
        "shard",
        "proc",
        "host",
        "port",
        "pid",
        "ready",
        "retired",
        "restarts",
        "backoff",
        "started_at",
        "last_beat",
        "monitor",
    )

    def __init__(self, shard: str):
        self.shard = shard
        self.proc: asyncio.subprocess.Process | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.pid: int | None = None
        self.ready = False
        self.retired = False
        self.restarts = 0
        self.backoff = 0.0
        self.started_at = 0.0
        self.last_beat = 0.0
        self.monitor: asyncio.Task | None = None


class Supervisor:
    """Keep one worker process alive per shard."""

    def __init__(
        self,
        recognizer_path: str,
        shards,
        *,
        timeout: float | None = None,
        max_sessions: int = 4096,
        heartbeat: float = DEFAULT_HEARTBEAT,
        heartbeat_timeout: float | None = None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        healthy_after: float = 5.0,
        on_up=None,
        on_down=None,
        registry=None,
        no_lp1_shards=(),
        quality: bool = False,
        quality_sample: float = 1.0,
        quality_seed: int = 0,
        model_cache: int | None = None,
    ):
        self.recognizer_path = str(recognizer_path)
        self.model_cache = model_cache
        self.registry = None if registry is None else str(registry)
        # Quality telemetry flags, replicated to every worker (and to
        # every restart of one): the sampling hash is keyed on the
        # session id alone, so a respawned worker re-makes the exact
        # sampling choices its predecessor made.
        self.quality = quality
        self.quality_sample = quality_sample
        self.quality_seed = quality_seed
        self.shards = tuple(shards)
        # Shards spawned with --no-lp1 (NDJSON-only workers) — the
        # mixed-fleet compat knob; survives restarts of those shards.
        self.no_lp1_shards = frozenset(no_lp1_shards)
        self.timeout = timeout
        self.max_sessions = max_sessions
        self.heartbeat = heartbeat
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None else 5 * heartbeat
        )
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.healthy_after = healthy_after
        self.on_up = on_up
        self.on_down = on_down
        self.workers = {shard: WorkerHandle(shard) for shard in self.shards}
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard and wait until all are ready."""
        await asyncio.gather(*(self._spawn(s) for s in self.shards))

    async def stop(self) -> None:
        """Terminate every worker and reap the monitors."""
        self._stopping = True
        monitors = []
        for handle in self.workers.values():
            if handle.monitor is not None:
                monitors.append(handle.monitor)
            self._terminate(handle)
        for task in monitors:
            with suppress(asyncio.CancelledError):
                await task

    async def add_shard(self, shard: str) -> None:
        """Scale-out path: spawn a brand-new shard and wait until ready.

        The caller registers the shard with the router first (so the
        ready line's ``on_up`` finds a link to connect), then folds it
        into the ring once this returns.
        """
        if shard in self.workers:
            raise ValueError(f"shard already known: {shard}")
        self.shards = self.shards + (shard,)
        self.workers[shard] = WorkerHandle(shard)
        await self._spawn(shard)

    async def retire(self, shard: str) -> None:
        """Drain path: terminate ``shard`` and never restart it."""
        handle = self.workers[shard]
        handle.retired = True
        self._terminate(handle)
        if handle.monitor is not None:
            with suppress(asyncio.CancelledError):
                await handle.monitor

    def kill(self, shard: str) -> int | None:
        """SIGKILL a worker (chaos/testing); the monitor restarts it."""
        handle = self.workers[shard]
        if handle.proc is not None and handle.proc.returncode is None:
            pid = handle.proc.pid
            handle.proc.send_signal(signal.SIGKILL)
            return pid
        return None

    def status(self) -> dict:
        """Per-shard view for fleet ``stats`` replies."""
        out = {}
        for shard in self.shards:
            handle = self.workers[shard]
            out[shard] = {
                "ready": handle.ready,
                "retired": handle.retired,
                "pid": handle.pid,
                "port": handle.port,
                "restarts": handle.restarts,
            }
        return out

    # -- internals -----------------------------------------------------------

    def _terminate(self, handle: WorkerHandle) -> None:
        if handle.proc is not None and handle.proc.returncode is None:
            with suppress(ProcessLookupError):
                handle.proc.terminate()

    async def _spawn(self, shard: str) -> None:
        handle = self.workers[shard]
        cmd = worker_command(
            self.recognizer_path,
            shard,
            timeout=self.timeout,
            max_sessions=self.max_sessions,
            heartbeat=self.heartbeat,
            registry=self.registry,
            lp1=shard not in self.no_lp1_shards,
            quality=self.quality,
            quality_sample=self.quality_sample,
            quality_seed=self.quality_seed,
            model_cache=self.model_cache,
        )
        loop = asyncio.get_running_loop()
        handle.proc = await asyncio.create_subprocess_exec(
            *cmd,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=worker_env(),
        )
        handle.pid = handle.proc.pid
        handle.ready = False
        handle.started_at = loop.time()
        handle.last_beat = handle.started_at
        ready = loop.create_future()
        handle.monitor = loop.create_task(self._monitor(handle, ready))
        await ready

    async def _monitor(self, handle: WorkerHandle, ready: asyncio.Future) -> None:
        """Follow one worker process from ready line to exit to restart."""
        proc = handle.proc
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    raw = await asyncio.wait_for(
                        proc.stdout.readline(), timeout=self.heartbeat_timeout
                    )
                except asyncio.TimeoutError:
                    # Hung: no ready line / heartbeat inside the window.
                    with suppress(ProcessLookupError):
                        proc.kill()
                    await proc.wait()
                    break
                if not raw:  # EOF: the process died (or was killed)
                    await proc.wait()
                    break
                try:
                    event = json.loads(raw)
                except ValueError:
                    continue  # stray stdout noise is not a health signal
                handle.last_beat = loop.time()
                if event.get("event") == "ready":
                    handle.host = event.get("host")
                    handle.port = event.get("port")
                    try:
                        if self.on_up is not None:
                            await self.on_up(
                                handle.shard, handle.host, handle.port
                            )
                    except OSError:
                        # The worker printed its ready line and then
                        # died before the router could connect to it
                        # (ConnectionRefusedError and kin).  Treat it
                        # exactly like a death: reap the process and
                        # fall through to the backoff-respawn path —
                        # letting the exception escape would kill this
                        # monitor task and leave the shard permanently
                        # unwatched and never restarted.
                        with suppress(ProcessLookupError):
                            proc.kill()
                        await proc.wait()
                        break
                    handle.ready = True
                    if not ready.done():
                        ready.set_result(None)
        finally:
            was_ready = handle.ready
            handle.ready = False
            if not ready.done():  # died before ever becoming ready
                ready.set_result(None)
            if was_ready and self.on_down is not None:
                await self.on_down(handle.shard)
        if self._stopping or handle.retired:
            return
        # Crash path: back off, then respawn this shard.
        uptime = loop.time() - handle.started_at
        if uptime >= self.healthy_after:
            handle.backoff = 0.0
        handle.backoff = (
            self.backoff_base
            if handle.backoff == 0.0
            else min(handle.backoff * 2, self.backoff_max)
        )
        handle.restarts += 1
        await asyncio.sleep(handle.backoff)
        if not self._stopping and not handle.retired:
            await self._spawn(handle.shard)
