"""Parametric gesture synthesis.

The paper's recognizers were trained and tested on gestures entered by a
person with a mouse ("trained with ten examples of each of the eight
classes, and tested on thirty examples of each class").  This module is
the reproduction's substitute for that person: it perturbs class
templates with the variation a human hand introduces —

* positional jitter on every sample,
* small whole-gesture rotation and scale wobble,
* uneven mouse sampling (multiplicative noise on sample spacing),
* and, optionally, the paper's characteristic error mode: a corner
  "looping 270 degrees rather than being a sharp 90 degrees" so the
  second stroke momentarily heads the opposite way.

Each generated stroke carries ground truth: the sample index of every
template corner, which gives the oracle unambiguity point figure 9's
"determined by hand" numbers stand in for.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from ..geometry import Point, Stroke
from .templates import GestureTemplate

__all__ = [
    "GenerationParams",
    "GeneratedGesture",
    "GestureGenerator",
    "with_params",
]


@dataclass(frozen=True)
class GenerationParams:
    """Noise and sampling parameters for synthesis.

    Defaults model a comfortable mouse gesture: roughly 100 px across,
    sampled every ~6 px at 100 Hz, with ~1 px of hand tremor.
    """

    scale: float = 100.0  # nominal gesture size in pixels
    spacing: float = 6.0  # nominal distance between mouse samples
    dt: float = 0.01  # seconds between mouse samples (100 Hz)
    jitter: float = 1.2  # stddev of per-sample positional noise (px)
    rotation_sigma: float = 0.07  # stddev of whole-gesture rotation (rad)
    scale_sigma: float = 0.10  # stddev of log scale wobble
    spacing_sigma: float = 0.15  # stddev of per-step spacing noise (fraction)
    speed_sigma: float = 0.20  # stddev of log drawing-speed wobble
    corner_loop_probability: float = 0.0  # chance a corner becomes a loop
    corner_loop_radius: float = 0.05  # loop radius as a fraction of scale


@dataclass(frozen=True)
class GeneratedGesture:
    """A synthesized example with its ground truth."""

    stroke: Stroke
    class_name: str
    # Sample index of each template corner, in stroke order.  For a
    # two-segment gesture the first entry is the oracle unambiguity point.
    corner_sample_indices: tuple[int, ...] = field(default_factory=tuple)
    looped_corner: bool = False  # True when the loop error mode fired

    @property
    def oracle_points(self) -> int | None:
        """Mouse points through the first corner turn, or None if cornerless."""
        if not self.corner_sample_indices:
            return None
        return self.corner_sample_indices[0] + 1


class GestureGenerator:
    """Draws example strokes for a family of gesture classes.

    The generator is deterministic given its seed, so every benchmark and
    test reproduces the paper's experiment with identical data.  All
    randomness comes from one stdlib :class:`random.Random` — whose
    output streams are stable across platforms and Python releases,
    unlike numpy's distribution methods, which only promise stability
    within a numpy version — so a dataset (and everything trained from
    it, see :mod:`repro.train`) hashes identically everywhere.  Pass
    ``rng`` to share a single seeded source across generation and
    training; otherwise the generator seeds its own from ``seed``.
    """

    def __init__(
        self,
        templates: Mapping[str, GestureTemplate] | Sequence[GestureTemplate],
        params: GenerationParams | None = None,
        seed: int = 0,
        rng: random.Random | None = None,
    ):
        if not isinstance(templates, Mapping):
            templates = {t.name: t for t in templates}
        if not templates:
            raise ValueError("no templates given")
        self.templates: dict[str, GestureTemplate] = dict(templates)
        self.params = params or GenerationParams()
        self._rng = rng if rng is not None else random.Random(seed)

    @property
    def class_names(self) -> list[str]:
        return list(self.templates.keys())

    # -- single example ------------------------------------------------------

    def generate(self, class_name: str) -> GeneratedGesture:
        """Synthesize one example of a class."""
        template = self.templates.get(class_name)
        if template is None:
            raise KeyError(f"unknown gesture class {class_name!r}")
        p = self.params
        rng = self._rng

        if template.is_dot:
            return self._generate_dot(template)

        # Scale the ideal polyline to pixels, then optionally replace
        # corners with small loops (the error mode).
        waypoints = [
            (x * p.scale, y * p.scale) for x, y in template.waypoints
        ]
        corner_waypoints = list(template.corner_indices)
        looped = False
        if p.corner_loop_probability > 0.0 and corner_waypoints:
            waypoints, corner_waypoints, looped = self._maybe_loop_corners(
                waypoints, corner_waypoints
            )

        # Arc-length positions of corners, for ground truth after sampling.
        cumulative = _cumulative_lengths(waypoints)
        corner_arcs = [cumulative[i] for i in corner_waypoints]

        samples, sample_arcs = self._sample_polyline(
            waypoints, template.speed_scale
        )

        # Whole-gesture wobble: rotate and scale about the first point.
        theta = rng.gauss(0.0, p.rotation_sigma)
        scale = math.exp(rng.gauss(0.0, p.scale_sigma))
        ox, oy = samples[0]
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        transformed = []
        for x, y in samples:
            dx, dy = (x - ox) * scale, (y - oy) * scale
            transformed.append(
                (ox + cos_t * dx - sin_t * dy, oy + sin_t * dx + cos_t * dy)
            )

        # Per-sample jitter.
        jittered = [
            (
                x + rng.gauss(0.0, p.jitter),
                y + rng.gauss(0.0, p.jitter),
            )
            for x, y in transformed
        ]

        # Timing: a constant mouse clock, with the whole gesture drawn
        # faster or slower run to run.  Class pace is spatial (the
        # template's speed_scale stretches sample spacing), so it holds
        # when the serving layer replays one sample per fixed tick.
        dt = p.dt * math.exp(rng.gauss(0.0, p.speed_sigma))
        if template.dwell_samples:
            # The press stays down at the end of the path: more samples
            # jittered in place, the clock still running (a hold).
            lx, ly = transformed[-1]
            jittered.extend(
                (lx + rng.gauss(0.0, p.jitter), ly + rng.gauss(0.0, p.jitter))
                for _ in range(template.dwell_samples)
            )
        if template.press_samples:
            # The finger landed before the path launched: samples
            # jittered at the origin, ahead of the motion (a flick
            # accelerating from rest).
            fx, fy = transformed[0]
            jittered[:0] = [
                (fx + rng.gauss(0.0, p.jitter), fy + rng.gauss(0.0, p.jitter))
                for _ in range(template.press_samples)
            ]
        points = [
            Point(x, y, i * dt) for i, (x, y) in enumerate(jittered)
        ]

        corner_samples = tuple(
            _first_index_at_least(sample_arcs, arc) + template.press_samples
            for arc in corner_arcs
        )
        return GeneratedGesture(
            stroke=Stroke(points),
            class_name=template.name,
            corner_sample_indices=corner_samples,
            looped_corner=looped,
        )

    def _generate_dot(self, template: GestureTemplate) -> GeneratedGesture:
        """GDP's dot gesture: two samples at (nearly) the same spot.

        With ``dwell_samples`` the dot becomes a press-and-hold: the
        extra samples keep jittering in place while the clock runs.
        """
        p = self.params
        x0, y0 = template.waypoints[0]
        x0, y0 = x0 * p.scale, y0 * p.scale
        dt = p.dt
        points = [
            Point(
                x0 + self._rng.gauss(0.0, p.jitter / 2.0),
                y0 + self._rng.gauss(0.0, p.jitter / 2.0),
                i * dt,
            )
            for i in range(2 + template.dwell_samples)
        ]
        return GeneratedGesture(stroke=Stroke(points), class_name=template.name)

    def _maybe_loop_corners(
        self,
        waypoints: list[tuple[float, float]],
        corner_indices: list[int],
        loop_steps: int = 10,
    ) -> tuple[list[tuple[float, float]], list[int], bool]:
        """Replace corners with 270-degree loops, each with probability p.

        At a corner where the path would turn by ``theta``, the loop
        sweeps ``theta - 2*pi*sign(theta)`` — the long way round — through
        a small circle tangent to the incoming direction.
        """
        p = self.params
        out: list[tuple[float, float]] = []
        new_corners: list[int] = []
        looped = False
        radius = p.corner_loop_radius * p.scale
        corner_set = set(corner_indices)
        for i, (x, y) in enumerate(waypoints):
            if i in corner_set and self._rng.random() < p.corner_loop_probability:
                ax, ay = waypoints[i - 1]
                bx, by = waypoints[i + 1]
                in_angle = math.atan2(y - ay, x - ax)
                out_angle = math.atan2(by - y, bx - x)
                turn = _wrap_angle(out_angle - in_angle)
                # Sweep the complementary way: a 90-degree turn becomes a
                # 270-degree loop curving in the opposite direction.
                sweep = turn - math.copysign(2 * math.pi, turn)
                # Loop center sits perpendicular to the incoming direction,
                # on the side the loop curves toward.
                side = math.copysign(1.0, sweep)
                cx = x - side * radius * math.sin(in_angle)
                cy = y + side * radius * math.cos(in_angle)
                start = math.atan2(y - cy, x - cx)
                out.append((x, y))
                new_corners.append(len(out) - 1)
                for k in range(1, loop_steps + 1):
                    ang = start + sweep * k / loop_steps
                    out.append(
                        (cx + radius * math.cos(ang), cy + radius * math.sin(ang))
                    )
                looped = True
            else:
                out.append((x, y))
                if i in corner_set:
                    new_corners.append(len(out) - 1)
        return out, new_corners, looped

    def _sample_polyline(
        self, waypoints: list[tuple[float, float]], speed_scale: float = 1.0
    ) -> tuple[list[tuple[float, float]], list[float]]:
        """Walk the polyline emitting samples every ~spacing pixels.

        ``speed_scale`` stretches the spacing (a fast class covers more
        ground per mouse sample).  Returns the samples and each
        sample's arc-length position.
        """
        p = self.params
        cumulative = _cumulative_lengths(waypoints)
        total = cumulative[-1]
        samples = [waypoints[0]]
        arcs = [0.0]
        position = 0.0
        while position < total:
            step = p.spacing * speed_scale * max(
                0.2, 1.0 + self._rng.gauss(0.0, p.spacing_sigma)
            )
            position = min(position + step, total)
            samples.append(_point_at_arc(waypoints, cumulative, position))
            arcs.append(position)
        return samples, arcs

    # -- batches ------------------------------------------------------------

    def generate_examples(
        self, count_per_class: int
    ) -> dict[str, list[GeneratedGesture]]:
        """``count_per_class`` examples of every class, with ground truth."""
        return {
            name: [self.generate(name) for _ in range(count_per_class)]
            for name in self.templates
        }

    def generate_strokes(self, count_per_class: int) -> dict[str, list[Stroke]]:
        """Bare strokes per class — the shape the trainers consume."""
        return {
            name: [self.generate(name).stroke for _ in range(count_per_class)]
            for name in self.templates
        }


def _cumulative_lengths(waypoints: list[tuple[float, float]]) -> list[float]:
    """Arc length from the start to each waypoint."""
    out = [0.0]
    for (ax, ay), (bx, by) in zip(waypoints, waypoints[1:]):
        out.append(out[-1] + math.hypot(bx - ax, by - ay))
    return out


def _point_at_arc(
    waypoints: list[tuple[float, float]],
    cumulative: list[float],
    position: float,
) -> tuple[float, float]:
    """The point a given arc length along the polyline."""
    if position <= 0.0:
        return waypoints[0]
    if position >= cumulative[-1]:
        return waypoints[-1]
    # Binary search for the segment containing `position`.
    lo, hi = 0, len(cumulative) - 1
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] <= position:
            lo = mid
        else:
            hi = mid
    seg_len = cumulative[hi] - cumulative[lo]
    frac = 0.0 if seg_len == 0.0 else (position - cumulative[lo]) / seg_len
    (ax, ay), (bx, by) = waypoints[lo], waypoints[hi]
    return (ax + frac * (bx - ax), ay + frac * (by - ay))


def _first_index_at_least(values: list[float], target: float) -> int:
    """Index of the first value >= target (last index if none)."""
    for i, v in enumerate(values):
        if v >= target - 1e-9:
            return i
    return len(values) - 1


def _wrap_angle(theta: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    while theta > math.pi:
        theta -= 2 * math.pi
    while theta <= -math.pi:
        theta += 2 * math.pi
    return theta


def with_params(
    generator: GestureGenerator, **overrides
) -> GestureGenerator:
    """A new generator sharing templates but with altered parameters.

    Keeps benchmark code terse: ``with_params(gen, corner_loop_probability=0.1)``.
    """
    return GestureGenerator(
        generator.templates,
        replace(generator.params, **overrides),
        seed=generator._rng.randrange(2**31),
    )
