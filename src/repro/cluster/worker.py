"""One cluster worker: a :class:`~repro.serve.GestureServer` subprocess.

A worker is deliberately nothing new — it runs the exact single-process
serve stack on its own core, loaded from a saved recognizer file, and
speaks the exact NDJSON protocol.  Everything cluster-specific lives in
the router and supervisor; a worker cannot tell whether its peer is a
router or a plain client, which is what keeps the sharded decisions
bit-identical to the single-process ones.

The supervisor protocol is one JSON line per event on stdout:

* ``{"event": "ready", "shard": ..., "port": ..., "pid": ...}`` once
  the server is listening (``--port 0`` picks a free port; the ready
  line is how the supervisor learns which);
* ``{"event": "hb"}`` every ``--heartbeat`` seconds of wall time — the
  supervisor declares a silent worker hung and recycles it.

A worker whose stdout pipe breaks (its supervisor died) exits, so an
orphaned fleet reaps itself.  Run directly for debugging::

    python -m repro.cluster.worker --recognizer model.json --shard w0
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from pathlib import Path

__all__ = ["main", "worker_command"]

DEFAULT_HEARTBEAT = 2.0


def worker_command(
    recognizer: str,
    shard: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    timeout: float | None = None,
    max_sessions: int = 4096,
    heartbeat: float = DEFAULT_HEARTBEAT,
    metrics: bool = True,
    registry: str | None = None,
    lp1: bool = True,
    quality: bool = False,
    quality_sample: float = 1.0,
    quality_seed: int = 0,
    model_cache: int | None = None,
) -> list[str]:
    """The argv the supervisor spawns for one worker."""
    cmd = [
        sys.executable,
        "-m",
        "repro.cluster.worker",
        "--recognizer",
        str(recognizer),
        "--shard",
        shard,
        "--host",
        host,
        "--port",
        str(port),
        "--max-sessions",
        str(max_sessions),
        "--heartbeat",
        str(heartbeat),
    ]
    if timeout is not None:
        cmd += ["--timeout", str(timeout)]
    if not metrics:
        cmd.append("--no-metrics")
    if registry is not None:
        cmd += ["--registry", str(registry)]
    if model_cache is not None:
        cmd += ["--model-cache", str(model_cache)]
    if not lp1:
        cmd.append("--no-lp1")
    if quality:
        cmd.append("--quality")
        if quality_sample != 1.0:
            cmd += ["--quality-sample", str(quality_sample)]
        if quality_seed != 0:
            cmd += ["--quality-seed", str(quality_seed)]
    return cmd


def worker_env() -> dict:
    """The child environment: the parent's, with this package importable."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


async def _amain(args: argparse.Namespace) -> int:
    from ..eager import EagerRecognizer
    from ..interaction import DEFAULT_TIMEOUT
    from ..obs import MetricsRegistry, PoolObserver, QualityMonitor
    from ..serve import GestureServer

    recognizer = EagerRecognizer.load(args.recognizer)
    if args.no_metrics:
        observer = None
    else:
        metrics = MetricsRegistry()
        # Quality telemetry stays deferred (no tracer in a worker): the
        # monitor stages raw snapshots and its registry collector hook
        # folds them in whenever a stats request snapshots the metrics,
        # so fleet-wide merges always see fully accounted numbers.
        quality = (
            QualityMonitor(
                recognizer,
                metrics=metrics,
                sample=args.quality_sample,
                sample_seed=args.quality_seed,
            )
            if args.quality
            else None
        )
        observer = PoolObserver(metrics=metrics, quality=quality)
    server = GestureServer(
        recognizer,
        host=args.host,
        port=args.port,
        timeout=args.timeout if args.timeout is not None else DEFAULT_TIMEOUT,
        max_sessions=args.max_sessions,
        observer=observer,
        registry=args.registry,
        model_cache=args.model_cache,
        allow_lp1=not args.no_lp1,
    )
    await server.start()
    host, port = server.address
    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stopping.set)
    print(
        json.dumps(
            {
                "event": "ready",
                "shard": args.shard,
                "host": host,
                "port": port,
                "pid": os.getpid(),
            }
        ),
        flush=True,
    )
    try:
        while not stopping.is_set():
            try:
                await asyncio.wait_for(
                    stopping.wait(), timeout=args.heartbeat
                )
            except asyncio.TimeoutError:
                pass
            else:
                break
            try:
                print(json.dumps({"event": "hb"}), flush=True)
            except (BrokenPipeError, OSError):
                break  # supervisor is gone; die with it
    finally:
        await server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="one shard of the gesture-recognition cluster",
    )
    parser.add_argument("--recognizer", required=True, help="saved recognizer JSON")
    parser.add_argument("--shard", required=True, help="this worker's shard name")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--max-sessions", type=int, default=4096)
    parser.add_argument("--heartbeat", type=float, default=DEFAULT_HEARTBEAT)
    parser.add_argument("--no-metrics", action="store_true")
    parser.add_argument(
        "--registry",
        default=None,
        help="model registry directory enabling swap ops",
    )
    parser.add_argument(
        "--model-cache",
        type=int,
        default=None,
        metavar="N",
        help="bound swapped-in models resident per pool to N, LRU-"
        "evicted and reloaded from the registry on next use",
    )
    parser.add_argument(
        "--no-lp1",
        action="store_true",
        help="refuse lp1 framing negotiation (NDJSON only — the legacy"
        " wire, for mixed-fleet compat testing)",
    )
    parser.add_argument(
        "--quality",
        action="store_true",
        help="attach recognition-quality telemetry (quality.* metrics, "
        "merged fleet-wide by the router's stats reply)",
    )
    parser.add_argument(
        "--quality-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="score a deterministic fraction of sessions, keyed on the "
        "session id (default 1.0 = every session)",
    )
    parser.add_argument(
        "--quality-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the sampling hash (same seed fleet-wide => "
        "same sampled set on every worker)",
    )
    args = parser.parse_args(argv)
    if args.quality and args.no_metrics:
        parser.error("--quality needs metrics; drop --no-metrics")
    if args.model_cache is not None and args.registry is None:
        parser.error("--model-cache needs --registry to reload from")
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
