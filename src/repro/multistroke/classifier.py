"""Stroke-count-gated classification of multi-stroke gestures."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..recognizer import GestureClassifier
from .gesture import MultiStrokeGesture

__all__ = ["MultiStrokeClassifier"]


class MultiStrokeClassifier:
    """One connected-stroke Rubine classifier per stroke count.

    Gating by stroke count mirrors the multi-path classifier's
    path-count gating: the number of pen-downs is a hard, noise-free
    discriminator, so classes with different counts never compete.
    """

    def __init__(self, by_stroke_count: dict[int, GestureClassifier]):
        if not by_stroke_count:
            raise ValueError("no sub-classifiers given")
        self._by_stroke_count = by_stroke_count

    @classmethod
    def train(
        cls, examples_by_class: Mapping[str, Sequence[MultiStrokeGesture]]
    ) -> "MultiStrokeClassifier":
        """Train from labelled multi-stroke gestures.

        Every example of a class must use the same number of strokes (an
        'X' is two strokes by definition).
        """
        grouped: dict[int, dict[str, list]] = {}
        for class_name, gestures in examples_by_class.items():
            gestures = list(gestures)
            if not gestures:
                raise ValueError(f"class {class_name!r} has no examples")
            counts = {g.stroke_count for g in gestures}
            if len(counts) != 1:
                raise ValueError(
                    f"class {class_name!r} mixes stroke counts {sorted(counts)}"
                )
            grouped.setdefault(counts.pop(), {})[class_name] = [
                g.connected() for g in gestures
            ]
        return cls(
            {
                count: GestureClassifier.train(classes)
                for count, classes in grouped.items()
            }
        )

    @property
    def stroke_counts(self) -> list[int]:
        return sorted(self._by_stroke_count.keys())

    def class_names_for(self, stroke_count: int) -> list[str]:
        classifier = self._by_stroke_count.get(stroke_count)
        return [] if classifier is None else list(classifier.class_names)

    def classify(self, gesture: MultiStrokeGesture) -> str:
        """Class of the gesture; unknown stroke counts raise KeyError."""
        classifier = self._by_stroke_count.get(gesture.stroke_count)
        if classifier is None:
            raise KeyError(
                f"no gesture class uses {gesture.stroke_count} strokes "
                f"(trained counts: {self.stroke_counts})"
            )
        return classifier.classify(gesture.connected())
