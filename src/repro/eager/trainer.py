"""The eager-recognition training pipeline (paper §4.4–4.7).

The whole algorithm, as the paper summarizes it:

1. Train the full classifier C on the full training gestures.
2. Run C on every subgesture of every training example; label each
   subgesture complete or incomplete (§4.4).
3. Partition the subgestures into 2C sets C-c / I-c (§4.4).
4. Move accidentally complete subgestures into incomplete sets, using a
   Mahalanobis threshold of 50% of the smallest full-class-to-incomplete-
   set mean distance (§4.5).
5. Train a 2C-class linear classifier — the AUC — on the partition (§4.6).
6. Bias it 5:1 toward ambiguity, then lower complete-class constants
   until no training incomplete subgesture is judged unambiguous (§4.6).

Every step's knobs live in :class:`EagerTrainingConfig`, with the paper's
values as defaults, so the ablation benchmarks can switch steps off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..geometry import Stroke
from ..recognizer import GestureClassifier, train_linear_classifier
from .auc import AMBIGUITY_BIAS_RATIO, AmbiguityClassifier
from .partition import (
    ExampleLabelling,
    SubgesturePartition,
    compute_move_threshold,
    is_complete_set,
    label_examples,
    move_accidentally_complete,
    partition_subgestures,
)
from .recognizer import EagerRecognizer
from .subgestures import MIN_PREFIX_POINTS

__all__ = [
    "AucBuildStats",
    "EagerTrainingConfig",
    "EagerTrainingReport",
    "build_auc",
    "train_eager_recognizer",
]


@dataclass
class EagerTrainingConfig:
    """Knobs of the eager training algorithm; defaults match the paper."""

    # Smallest prefix ever shown to a classifier.
    min_prefix_points: int = MIN_PREFIX_POINTS
    # §4.5 accidental-complete move: on/off, the 50% fraction, and the
    # floor below which full-to-incomplete distances are ignored.
    move_accidental: bool = True
    move_threshold_fraction: float = 0.5
    move_exclusion_distance: float = 1.0
    # §4.6 conservative bias: ambiguous judged 5x more likely a priori.
    ambiguity_bias_ratio: float = AMBIGUITY_BIAS_RATIO
    # §4.6 tweak: push complete-class constants down until clean.
    tweak: bool = True
    tweak_margin: float = 0.1
    tweak_max_rounds: int = 20
    # Ablation: collapse the 2C sets to a naive ambiguous/unambiguous
    # two-class problem (§4.4 argues this fails; bench verifies).
    two_class_only: bool = False


@dataclass
class AucBuildStats:
    """What the partition-to-AUC steps (§4.5–4.6) did to the data."""

    move_threshold: float
    moved_count: int
    tweak_adjustments: int


@dataclass
class EagerTrainingReport:
    """Artifacts of one training run, kept for inspection and figures 5–7."""

    recognizer: EagerRecognizer
    labelled: list[ExampleLabelling]
    partition: SubgesturePartition
    move_threshold: float
    moved_count: int
    tweak_adjustments: int
    set_counts: dict[str, int] = field(default_factory=dict)


def train_eager_recognizer(
    examples_by_class: Mapping[str, Sequence[Stroke]],
    config: EagerTrainingConfig | None = None,
    full_classifier: GestureClassifier | None = None,
    rng: random.Random | None = None,
) -> EagerTrainingReport:
    """Build an eager recognizer from example gestures.

    Args:
        examples_by_class: training strokes grouped by gesture class.
        config: training knobs; paper defaults when omitted.
        full_classifier: reuse an already-trained full classifier (it must
            have been trained on compatible classes); trained here when
            omitted.
        rng: the seeded :class:`random.Random` that generated the training
            data, when the caller wants one source of randomness threaded
            through generation *and* training.  Every step of this
            algorithm is closed-form deterministic, so the trainer never
            draws from it today — the parameter exists so any future
            stochastic step (subsampling, restarts) must use this stream
            instead of silently seeding a second one, keeping the packaged
            model's content hash a pure function of (dataset, config).

    Returns:
        The trained recognizer plus the intermediate artifacts the
        evaluation figures need.
    """
    del rng  # accepted for seed-threading; see docstring
    if config is None:
        config = EagerTrainingConfig()
    examples = {name: list(strokes) for name, strokes in examples_by_class.items()}
    if not examples:
        raise ValueError("no training classes given")

    # Step 1 — the full classifier.
    if full_classifier is None:
        full_classifier = GestureClassifier.train(examples)
    elif full_classifier.feature_indices is not None:
        # The eager pipeline reuses the full classifier's Mahalanobis
        # metric against 13-dim subgesture vectors; a feature-masked
        # classifier's metric lives in the masked space.
        raise ValueError(
            "eager training requires a full-feature classifier; "
            "train it without feature_indices"
        )

    # Step 2 — label every subgesture complete/incomplete.
    labelled = label_examples(
        full_classifier, examples, min_points=config.min_prefix_points
    )

    # Step 3 — the 2C-way partition.
    partition = partition_subgestures(labelled, full_classifier.class_names)

    # Steps 4–6 — the shared partition-to-AUC path.
    auc, stats = build_auc(full_classifier, partition, config)

    recognizer = EagerRecognizer(
        full_classifier=full_classifier,
        auc=auc,
        min_points=config.min_prefix_points,
    )
    return EagerTrainingReport(
        recognizer=recognizer,
        labelled=labelled,
        partition=partition,
        move_threshold=stats.move_threshold,
        moved_count=stats.moved_count,
        tweak_adjustments=stats.tweak_adjustments,
        set_counts=partition.counts(),
    )


def build_auc(
    full_classifier: GestureClassifier,
    partition: SubgesturePartition,
    config: EagerTrainingConfig | None = None,
) -> tuple[AmbiguityClassifier, AucBuildStats]:
    """Steps 4–6: partition in, trained-and-tweaked AUC out.

    Mutates ``partition`` (the accidental-complete move reassigns
    subgestures in place).  Factored out of
    :func:`train_eager_recognizer` so the staged training pipeline
    (:mod:`repro.train`) runs the exact same code on a partition
    reconstructed from cached stage artifacts — one implementation,
    bit-identical models.
    """
    if config is None:
        config = EagerTrainingConfig()

    # Step 4 — move accidentally complete subgestures.
    move_threshold = 0.0
    moved = 0
    if config.move_accidental:
        move_threshold = compute_move_threshold(
            full_classifier,
            partition,
            full_classifier.metric,
            minimum_fraction=config.move_threshold_fraction,
            exclusion_distance=config.move_exclusion_distance,
        )
        moved = move_accidentally_complete(
            partition, full_classifier.metric, move_threshold
        )

    # Step 5 — train the AUC on the non-empty sets.
    training_sets = {
        name: [sub.features for sub in subs]
        for name, subs in partition.non_empty_sets().items()
    }
    if config.two_class_only:
        collapsed: dict[str, list] = {"C:any": [], "I:any": []}
        for name, vectors in training_sets.items():
            key = "C:any" if is_complete_set(name) else "I:any"
            collapsed[key].extend(vectors)
        training_sets = {k: v for k, v in collapsed.items() if v}
    if not any(is_complete_set(name) for name in training_sets):
        raise ValueError(
            "no subgesture was unambiguous in training; this gesture set "
            "is not amenable to eager recognition (cf. paper figure 8)"
        )
    if not any(not is_complete_set(name) for name in training_sets):
        raise ValueError(
            "every subgesture was unambiguous in training; check that the "
            "training strokes are realistic (do classes share prefixes?)"
        )
    auc = AmbiguityClassifier(train_linear_classifier(training_sets).classifier)

    # Step 6 — bias conservatively, then tweak until clean on training data.
    if config.ambiguity_bias_ratio != 1.0:
        auc.apply_ambiguity_bias(config.ambiguity_bias_ratio)
    adjustments = 0
    if config.tweak:
        incomplete_vectors = [
            sub.features
            for name, subs in partition.non_empty_sets().items()
            if not is_complete_set(name)
            for sub in subs
        ]
        adjustments = auc.tweak_against(
            incomplete_vectors,
            margin=config.tweak_margin,
            max_rounds=config.tweak_max_rounds,
        )

    return auc, AucBuildStats(
        move_threshold=move_threshold,
        moved_count=moved,
        tweak_adjustments=adjustments,
    )
