"""Training-size sweep — how many examples does eager recognition need?

§4.2: "typically we train with 15 examples of each class"; figure 9
uses 10.  This sweep measures, on the figure-9 workload, how accuracy
and eagerness respond to the number of training examples per class —
the practical question an application designer using GRANDMA would ask.

Expected shape: accuracy saturates quickly (the closed-form trainer is
sample-efficient); eagerness keeps improving a little longer, because
the AUC needs enough subgestures to locate the unambiguity boundary.
"""

import pytest
from conftest import TEST_PARAMS, TEST_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.eager import train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.synth import GestureGenerator, eight_direction_templates

SWEEP = (3, 5, 10, 15, 25)


@pytest.fixture(scope="module")
def sweep_results():
    test = GestureSet.from_generator(
        "test",
        GestureGenerator(
            eight_direction_templates(), params=TEST_PARAMS, seed=182
        ),
        TEST_PER_CLASS,
    )
    results = {}
    for count in SWEEP:
        train = GestureGenerator(
            eight_direction_templates(), seed=181
        ).generate_strokes(count)
        report = train_eager_recognizer(train)
        results[count] = evaluate_recognizer(report.recognizer, test)
    return results


def test_training_size_sweep(sweep_results):
    rows = [
        f"  E = {count:>2}: full {result.full_accuracy:6.1%}   "
        f"eager {result.eager_accuracy:6.1%}   "
        f"seen {result.eagerness.mean_fraction_seen:6.1%}"
        for count, result in sweep_results.items()
    ]
    write_report(
        "training_size_sweep",
        "Training-size sweep on the figure-9 workload\n"
        "(paper uses E = 10 for figure 9, 'typically 15' for GDP)\n\n"
        + "\n".join(rows),
    )
    # Accuracy saturates: the paper's training sizes sit on the plateau.
    assert sweep_results[10].eager_accuracy > 0.85
    assert (
        sweep_results[25].eager_accuracy
        >= sweep_results[3].eager_accuracy - 0.02
    )
    # Full-classifier accuracy is already high at tiny training sizes.
    assert sweep_results[5].full_accuracy > 0.9


def test_training_scales_linearly(benchmark):
    """Training cost at the paper's E = 15."""
    train = GestureGenerator(
        eight_direction_templates(), seed=183
    ).generate_strokes(15)
    benchmark(lambda: train_eager_recognizer(train))
