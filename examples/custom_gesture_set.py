"""Define your own gesture set, train, persist, and reload.

GRANDMA's point was that application builders train recognizers from
examples instead of hand-coding them.  This example defines three custom
gesture classes as templates (a check mark, a caret, and a pigtail
loop), synthesizes "user" examples, trains an eager recognizer, saves it
to JSON, reloads it, and wires it into a gesture handler with custom
semantics.

Run:  python examples/custom_gesture_set.py
"""

import json
import math
import tempfile
from pathlib import Path

from repro.eager import EagerRecognizer, train_eager_recognizer
from repro.events import EventQueue, VirtualClock, stroke_events
from repro.geometry import BoundingBox
from repro.interaction import GestureHandler, GestureSemantics
from repro.mvc import Dispatcher, View
from repro.synth import (
    GestureGenerator,
    GestureTemplate,
    arc_waypoints,
)


def custom_templates() -> dict[str, GestureTemplate]:
    """Three gesture classes for an imaginary to-do list app."""
    check = GestureTemplate(  # mark item done
        name="check",
        waypoints=((0.0, 0.4), (0.3, 0.8), (0.9, 0.0)),
        corner_indices=(1,),
    )
    caret = GestureTemplate(  # insert a new item
        name="caret",
        waypoints=((0.0, 0.8), (0.4, 0.0), (0.8, 0.8)),
        corner_indices=(1,),
    )
    # A pigtail: a stroke right with a loop — the classic delete mark.
    loop = arc_waypoints(
        cx=0.5, cy=0.25, radius=0.25, start_angle=math.pi / 2,
        sweep=2 * math.pi * 0.8, steps=14,
    )
    pigtail = GestureTemplate(
        name="pigtail",
        waypoints=tuple([(0.0, 0.5), (0.3, 0.5)] + loop + [(1.0, 0.5)]),
    )
    return {t.name: t for t in (check, caret, pigtail)}


class TodoListView(View):
    """A stand-in application view covering the whole window."""

    def bounds(self) -> BoundingBox:
        return BoundingBox(0, 0, 800, 600)


def main() -> None:
    templates = custom_templates()

    # "Record" 12 examples per class and train.
    generator = GestureGenerator(templates, seed=5)
    report = train_eager_recognizer(generator.generate_strokes(12))
    print(f"trained classes: {report.recognizer.class_names}")

    # Persist the trained recognizer and load it back — what an
    # application would ship.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "todo-gestures.json"
        path.write_text(json.dumps(report.recognizer.to_dict()))
        recognizer = EagerRecognizer.from_dict(json.loads(path.read_text()))
        print(f"recognizer round-tripped through {path.name} "
              f"({path.stat().st_size} bytes)")

    # Wire it into a GRANDMA gesture handler with app semantics.
    actions = []
    semantics = {
        "check": GestureSemantics(
            recog=lambda ctx: actions.append(
                f"check item near ({ctx.start_x:.0f},{ctx.start_y:.0f})"
            )
        ),
        "caret": GestureSemantics(
            recog=lambda ctx: actions.append(
                f"insert item at ({ctx.start_x:.0f},{ctx.start_y:.0f})"
            )
        ),
        "pigtail": GestureSemantics(
            recog=lambda ctx: actions.append(
                f"delete item near ({ctx.start_x:.0f},{ctx.start_y:.0f})"
            )
        ),
    }
    view = TodoListView()
    view.add_handler(GestureHandler(recognizer=recognizer, semantics=semantics))
    queue = EventQueue(VirtualClock())
    dispatcher = Dispatcher(view, queue)

    # Perform one of each gesture at different spots.
    test_gen = GestureGenerator(templates, seed=77)
    for class_name, (x, y) in [
        ("check", (120, 100)),
        ("caret", (120, 260)),
        ("pigtail", (120, 420)),
    ]:
        stroke = test_gen.generate(class_name).stroke.translated(x, y)
        queue.post_all(stroke_events(stroke, t0=queue.clock.now + 1.0))
        dispatcher.run()

    print("\napplication actions executed by gesture semantics:")
    for action in actions:
        print(f"  - {action}")


if __name__ == "__main__":
    main()
