"""The training job specification.

A :class:`TrainJobSpec` pins everything that determines the packaged
model's content: the data source (a synthetic family + seed + count, or
a saved :class:`~repro.datasets.GestureSet` file), and the
:class:`~repro.eager.EagerTrainingConfig` knobs.  Deliberately *not* in
the spec: the jobs count, cache directory, and publish destination —
those change how fast the artifact is produced and where it goes, never
what it is, so two runs of one spec hash identically at any ``--jobs``.

Specs round-trip through JSON (``repro-gestures train --spec job.json``)
and hash to a short ``job_key`` that names checkpoints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping

from ..eager import EagerTrainingConfig
from ..hashing import short_hash

__all__ = ["TrainJobSpec", "CONFIG_FIELD_NAMES"]

# The EagerTrainingConfig knobs a spec may override, by name.
CONFIG_FIELD_NAMES = tuple(f.name for f in fields(EagerTrainingConfig))


@dataclass(frozen=True)
class TrainJobSpec:
    """One training job: data source + training knobs."""

    family: str | None = None  # synthetic gesture family name...
    dataset: str | None = None  # ...or a GestureSet JSON file
    examples: int = 15  # per-class count for synthetic data
    seed: int = 7  # seeds the single random.Random behind generation
    name: str | None = None  # publish name (not part of job identity)
    config: dict = field(default_factory=dict)  # EagerTrainingConfig overrides

    def __post_init__(self):
        if bool(self.family) == bool(self.dataset):
            raise ValueError(
                "a train spec needs exactly one data source: "
                "'family' or 'dataset'"
            )
        if self.family is not None and self.examples < 1:
            raise ValueError("examples must be >= 1")
        unknown = set(self.config) - set(CONFIG_FIELD_NAMES)
        if unknown:
            raise ValueError(
                f"unknown training config keys {sorted(unknown)}; "
                f"choose from {sorted(CONFIG_FIELD_NAMES)}"
            )

    # -- identity ------------------------------------------------------------

    def identity(self) -> dict:
        """The job-identity dict: everything that shapes the artifact.

        ``name`` is excluded — publishing the same model under two names
        is the same training job twice.
        """
        return {
            "family": self.family,
            "dataset": self.dataset,
            "examples": self.examples if self.family else None,
            "seed": self.seed if self.family else None,
            "config": {k: self.config[k] for k in sorted(self.config)},
        }

    @property
    def job_key(self) -> str:
        """Short content hash naming this job's checkpoint."""
        return short_hash(self.identity())

    # -- derived -------------------------------------------------------------

    def training_config(self) -> EagerTrainingConfig:
        return EagerTrainingConfig(**self.config)

    def model_name(self) -> str:
        """The registry name to publish under."""
        if self.name:
            return self.name
        if self.family:
            return self.family
        return Path(self.dataset).stem

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "dataset": self.dataset,
            "examples": self.examples,
            "seed": self.seed,
            "name": self.name,
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TrainJobSpec":
        known = {"family", "dataset", "examples", "seed", "name", "config"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec keys {sorted(unknown)}")
        return cls(
            family=data.get("family"),
            dataset=data.get("dataset"),
            examples=data.get("examples", 15),
            seed=data.get("seed", 7),
            name=data.get("name"),
            config=dict(data.get("config", {})),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "TrainJobSpec":
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed spec file {path}: {exc}") from None
        if not isinstance(data, dict):
            raise ValueError(f"spec file {path} must hold a JSON object")
        return cls.from_dict(data)
