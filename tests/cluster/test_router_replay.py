"""Router journal/replay semantics, pinned without worker subprocesses.

A scripted in-process "worker" — a bare asyncio server that records the
lines it receives and never replies — stands in for the real
:class:`~repro.serve.GestureServer`, so exactly what a restarted worker
would be fed is observable directly.  The routers are pinned to
``worker_framing="ndjson"``: a silent fake cannot answer the lp1 hello,
and framing negotiation has its own suite (tests/serve/test_framing.py).  Both tests are regressions from
review findings against the crash-recovery path.
"""

from __future__ import annotations

import asyncio
import json

from repro.cluster import Router


class FakeWorker:
    """Accepts one router connection and records every line verbatim."""

    def __init__(self):
        self.lines: list[dict] = []
        self._server = None

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def _handle(self, reader, writer) -> None:
        while True:
            raw = await reader.readline()
            if not raw:
                break
            self.lines.append(json.loads(raw))

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


async def _send(writer, *objs) -> None:
    writer.write(("\n".join(json.dumps(o) for o in objs) + "\n").encode())
    await writer.drain()


async def _wait(cond, what: str, timeout: float = 10.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not cond():
        assert loop.time() < deadline, f"timed out waiting for {what}"
        await asyncio.sleep(0.01)


def test_sweep_sent_to_live_worker_is_still_replayed_after_crash():
    # Review regression: sweeps used to be journaled only for links that
    # were "down" at routing time.  Death detection is asynchronous — a
    # worker can die holding a sweep it was already sent — so a sweep is
    # only safe to forget once its effects are in the journal's terminal
    # drops.  The replay for a restarted worker must re-run it.
    async def run():
        router = Router(["w0"], worker_framing="ndjson")
        await router.start()
        first, second = FakeWorker(), FakeWorker()
        try:
            host, port = await first.start()
            await router.worker_up("w0", host, port)
            _, cwriter = await asyncio.open_connection(*router.address)
            await _send(
                cwriter,
                {"op": "down", "stroke": "s1", "x": 0, "y": 0, "t": 0.0},
                {"op": "tick", "t": 0.0},
                {"op": "sweep", "max_idle": 30.0},
            )
            await _wait(
                lambda: any(l.get("op") == "sweep" for l in first.lines),
                "the live worker to receive the sweep",
            )
            # The worker dies with the sweep received but unprocessed.
            await router.worker_down("w0")
            host2, port2 = await second.start()
            await router.worker_up("w0", host2, port2)
            await _wait(
                lambda: any(l.get("op") == "sweep" for l in second.lines),
                "the replay to re-deliver the sweep",
            )
            cwriter.close()
            return list(second.lines)
        finally:
            await first.stop()
            await second.stop()
            await router.stop()

    replayed = asyncio.run(run())
    # The restarted worker walks the session, the sweep's clock marker,
    # the sweep, and the trailing tick to the fleet's present — in the
    # original order.
    assert [l["op"] for l in replayed] == ["down", "tick", "sweep", "tick"]
    assert replayed[1]["t"] == 0.0  # the sweep's clock marker
    assert replayed[2]["max_idle"] == 30.0


def test_sweep_with_no_live_sessions_is_not_journaled():
    # Pruning bound: with nothing to evict on replay, a sweep is dead
    # weight — extras must not grow without bound under periodic sweeps.
    async def run():
        router = Router(["w0"], worker_framing="ndjson")
        await router.start()
        try:
            _, writer = await asyncio.open_connection(*router.address)
            await _send(
                writer,
                {"op": "tick", "t": 1.0},
                {"op": "sweep", "max_idle": 0.0},
                {"op": "sweep", "max_idle": 0.0},
            )
            await _wait(
                lambda: router._clock == 1.0, "the tick to be processed"
            )
            await asyncio.sleep(0.05)  # let the sweeps route
            writer.close()
            return list(router.links["w0"].extras)
        finally:
            await router.stop()

    assert asyncio.run(run()) == []


def test_markers_carry_broadcast_clock_not_peer_op_timestamps():
    # Review regression: workers advance their pool clocks only at
    # tick/sweep barriers, so a journal marker must carry the highest
    # *broadcast* barrier — never a clock inferred from another
    # session's op timestamp.  A marker at a peer's t, replayed before
    # the op, would fire a motionless timeout the live worker never
    # fired and break byte-identical recovery.
    async def run():
        router = Router(["w0"], worker_framing="ndjson")
        await router.start()
        try:
            _, writer = await asyncio.open_connection(*router.address)
            await _send(
                writer,
                {"op": "down", "stroke": "a", "x": 0, "y": 0, "t": 0.0},
                {"op": "down", "stroke": "b", "x": 0, "y": 0, "t": 0.0},
                {"op": "tick", "t": 0.1},
                # The peer op at t=0.2 is routed ahead of a's move:
                {"op": "move", "stroke": "b", "x": 1, "y": 1, "t": 0.2},
                {"op": "move", "stroke": "a", "x": 1, "y": 1, "t": 0.2},
            )
            await _wait(
                lambda: "k1:a" in router.sessions
                and len(router.sessions["k1:a"].entries) >= 3,
                "a's move to be journaled",
            )
            writer.close()
            return [
                json.loads(line)
                for _, line in router.sessions["k1:a"].entries
            ]
        finally:
            await router.stop()

    entries = asyncio.run(run())
    # down (nothing broadcast yet: no marker), then the last broadcast
    # barrier (t=0.1) as the move's marker.  The peer's t=0.2 never was
    # a barrier, so it must not appear as one.
    assert [(e["op"], e["t"]) for e in entries] == [
        ("down", 0.0),
        ("tick", 0.1),
        ("move", 0.2),
    ]
