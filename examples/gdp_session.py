"""A GDP drawing session, driven entirely by gestures.

Reproduces the flavour of the paper's figure 3: each gesture is a single
stroke that simultaneously names an operation, its operands, and initial
parameters; the manipulation phase then adjusts the remaining parameters
interactively with application feedback.  The canvas is rendered as
ASCII art after each step.

Run:  python examples/gdp_session.py
"""

from repro.events import perform_gesture
from repro.gdp import GDPApp, GroupShape, train_gdp_recognizer
from repro.geometry import Stroke
from repro.synth import GestureGenerator, gdp_templates


def show(app: GDPApp, title: str) -> None:
    print(f"\n=== {title} ===")
    print(app.render(cols=72, rows=18))


def perform(app, stroke, manip_xy=None, dwell=0.3):
    manip = Stroke.from_xy(manip_xy, dt=0.03) if manip_xy else None
    app.perform(perform_gesture(stroke, dwell=dwell, manipulation_path=manip))


def anchored(stroke, x, y):
    return stroke.translated(x - stroke.start.x, y - stroke.start.y)


def main() -> None:
    print("training the GDP recognizer (11 classes x 15 examples)...")
    recognizer = train_gdp_recognizer(examples_per_class=15, seed=7)
    # Timeout-mode transitions so the scripted coordinates are exact;
    # set use_eager=True to watch eager recognition instead.
    app = GDPApp(recognizer=recognizer, use_eager=False)
    gestures = GestureGenerator(gdp_templates(), seed=42)

    # Rectangle: gesture fixes one corner; manipulation rubberbands the
    # other corner out to (380, 300).
    rect_stroke = gestures.generate("rect").stroke.translated(90, 80)
    perform(app, rect_stroke, manip_xy=[(260, 180), (380, 300)])
    rect = app.shapes[-1]
    show(app, "rectangle gesture + rubberband to (380, 300)")

    # Ellipse: the gesture start is the center; dragging sets size and
    # eccentricity.
    ellipse_stroke = gestures.generate("ellipse").stroke.translated(480, 330)
    perform(app, ellipse_stroke, manip_xy=[(640, 420)])
    ellipse = app.shapes[-1]
    show(app, "ellipse gesture + size/eccentricity manipulation")

    # Line from the rect's corner off to the right.
    line_stroke = gestures.generate("line").stroke.translated(420, 60)
    perform(app, line_stroke, manip_xy=[(700, 150)])
    show(app, "line gesture + endpoint drag")

    # Group: circle the ellipse; it becomes a composite.
    ex, ey = ellipse.center
    group_stroke = gestures.generate("group").stroke.translated(ex - 50, ey - 50)
    perform(app, group_stroke)
    groups = [s for s in app.shapes if isinstance(s, GroupShape)]
    print(f"\ngroup gesture enclosed {len(groups[-1].members)} shape(s)")

    # Copy the rectangle; the copy follows the mouse during manipulation.
    copy_stroke = anchored(gestures.generate("copy").stroke, *rect.corners[0])
    perform(
        app,
        copy_stroke,
        manip_xy=[(copy_stroke.end.x + 180, copy_stroke.end.y + 120)],
    )
    show(app, "copy gesture: duplicate dropped down-right")

    # Delete the original rectangle.
    delete_stroke = anchored(
        gestures.generate("delete").stroke, *rect.corners[0]
    )
    perform(app, delete_stroke)
    show(app, "delete gesture on the original rectangle")

    print(f"\nfinal canvas: {len(app.shapes)} top-level shapes")
    for shape in app.shapes:
        print(f"  - {type(shape).__name__}")


if __name__ == "__main__":
    main()
