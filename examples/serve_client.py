"""Talk to the recognition service over TCP, stroke by stroke.

Starts a :class:`repro.serve.GestureServer` on an ephemeral port, then
plays two clients against it concurrently over real sockets, speaking
the NDJSON protocol (``docs/SERVING.md``):

* client A draws an up-right gesture and releases — the server answers
  with a ``recog`` (often *eager*, before the release) and a ``commit``;
* client B draws two points and then goes motionless, sending only
  ``tick`` — the 200 ms *virtual* timeout classifies the prefix.

Everything is driven by the timestamps the clients send, so the output
is identical on every run, no matter how fast the machine is.

Run:  python examples/serve_client.py
"""

import asyncio
import json

from repro import GestureGenerator, eight_direction_templates, train_eager_recognizer
from repro.serve import GestureServer


WAIT = object()  # sentinel: wait for the gate before the next line


def _encode(op, t, stroke=None, x=0.0, y=0.0):
    payload = {"op": op, "t": round(t, 4)}
    if op != "tick":
        payload.update(stroke=stroke, x=x, y=y)
    return json.dumps(payload) + "\n"


async def client(name, host, port, lines, until="commit", gate=None, done=None):
    """Send request lines, then read replies until one of kind ``until``.

    All clients share one virtual timeline, so ``gate``/``done`` events
    order the big time jumps deterministically: B waits for A's stroke
    to be fully sent before announcing that time has moved on.
    """
    reader, writer = await asyncio.open_connection(host, port)
    for line in lines:
        if line is WAIT:
            await gate.wait()
            continue
        writer.write(line.encode())
        await writer.drain()
        await asyncio.sleep(0)  # let the other client interleave
    if done is not None:
        done.set()
    replies = []
    while True:
        reply = json.loads(await reader.readline())
        print(f"  {name} <- {reply['kind']:>6}"
              + (f" {reply['class']!r}" if reply.get("class") else "")
              + (f" ({reply['reason']})" if reply.get("reason") else ""))
        replies.append(reply)
        if reply["kind"] == until:
            break
    writer.close()
    await writer.wait_closed()
    return replies


async def main() -> None:
    generator = GestureGenerator(eight_direction_templates(), seed=1)
    recognizer = train_eager_recognizer(generator.generate_strokes(10)).recognizer
    server = GestureServer(recognizer, port=0)  # ephemeral port
    await server.start()
    host, port = server.address
    print(f"server up on {host}:{port}, classes: {recognizer.class_names}\n")

    # Client A: a full up-right gesture, point every 10 virtual ms.
    stroke = generator.generate("ur").stroke
    lines_a = [_encode("down", stroke[0].t, "a1", stroke[0].x, stroke[0].y)]
    lines_a += [_encode("move", p.t, "a1", p.x, p.y) for p in stroke[1:]]
    lines_a.append(_encode("up", stroke[-1].t, "a1", stroke[-1].x, stroke[-1].y))

    # Client B: two points, then silence — a tick carries time forward
    # until the 200 ms motionless timeout fires.  The tick waits for A's
    # stroke to be fully sent: one shared timeline, deterministic order.
    t_end = stroke[-1].t
    lines_b = [
        _encode("down", 0.00, "b1", 0.0, 0.0),
        _encode("move", 0.01, "b1", 8.0, 8.0),
        WAIT,
        _encode("tick", t_end + 0.30),
    ]

    a_done = asyncio.Event()
    try:
        await asyncio.gather(
            client("A", host, port, lines_a, until="commit", done=a_done),
            client("B", host, port, lines_b, until="recog", gate=a_done),
        )
    finally:
        await server.stop()
    print("\nboth clients served concurrently; decisions came from the "
          "clients' own timestamps, not the wall clock")


if __name__ == "__main__":
    asyncio.run(main())
