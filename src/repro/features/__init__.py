"""Rubine's gesture features: batch and incremental computation."""

from .incremental import (
    IncrementalFeatures,
    fold_turn_angles,
    vector_from_snapshot,
)
from .rubine import FEATURE_NAMES, NUM_FEATURES, feature_matrix, features_of

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "IncrementalFeatures",
    "feature_matrix",
    "features_of",
    "fold_turn_angles",
    "vector_from_snapshot",
]
