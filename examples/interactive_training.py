"""GRANDMA's interactive training loop, end to end.

The paper's system let an interface designer add gestures to a running
application: draw examples, retrain (closed form, instant), and the new
gesture is live.  This example plays designer:

1. a recording pad captures example strokes through the normal
   dispatcher (`StrokeRecorder`),
2. an `OnlineTrainer` accumulates sufficient statistics per class,
3. the built classifier is swapped into a live `GestureHandler`,
4. a brand-new gesture class is added the same way, without restarting.

Run:  python examples/interactive_training.py
"""

from repro.events import EventQueue, VirtualClock, stroke_events
from repro.geometry import BoundingBox
from repro.interaction import GestureHandler, GestureSemantics, StrokeRecorder
from repro.mvc import Dispatcher, View
from repro.recognizer import OnlineTrainer
from repro.synth import GestureGenerator, GestureTemplate, ud_templates


class Pad(View):
    def bounds(self):
        return BoundingBox(0, 0, 1000, 1000)


def draw_examples(dispatcher, strokes, t0=0.0):
    clock = t0
    for stroke in strokes:
        # Center the example on the pad (gestures are drawn around their
        # own origin, which may poke outside the view's bounds).
        stroke = stroke.translated(300, 300)
        for event in stroke_events(stroke, t0=clock):
            dispatcher.dispatch(event)
        clock += stroke.duration + 1.0


def main() -> None:
    trainer = OnlineTrainer()
    current = {"class": None}

    # The recording pad: every press-to-release becomes an example of
    # whatever class the designer currently has selected.
    recorder = StrokeRecorder(
        on_stroke=lambda s: trainer.add_example(current["class"], s)
    )
    pad = Pad()
    pad.add_handler(recorder)
    pad_dispatcher = Dispatcher(pad, EventQueue(VirtualClock()))

    designer = GestureGenerator(ud_templates(), seed=8)
    for class_name in ("U", "D"):
        current["class"] = class_name
        draw_examples(
            pad_dispatcher, designer.generate_strokes(10)[class_name]
        )
        print(
            f"recorded {trainer.example_count(class_name)} examples "
            f"of {class_name!r}"
        )

    # Build and wire into a live application view.
    actions = []
    handler = GestureHandler(
        recognizer=trainer.build(),
        semantics={
            name: GestureSemantics(
                recog=lambda ctx: actions.append(ctx.class_name)
            )
            for name in ("U", "D", "flick")
        },
        use_eager=False,
    )
    app_view = Pad()
    app_view.add_handler(handler)
    app = Dispatcher(app_view, EventQueue(VirtualClock()))

    user = GestureGenerator(ud_templates(), seed=9)
    for event in stroke_events(
        user.generate("U").stroke.translated(300, 300), t0=1.0
    ):
        app.dispatch(event)
    print(f"\nuser drew a U -> application saw: {actions[-1]!r}")

    # Mid-session, the designer invents a new gesture: a rightward flick.
    flick = GestureTemplate(name="flick", waypoints=((0.0, 0.0), (0.9, 0.05)))
    current["class"] = "flick"
    draw_examples(
        pad_dispatcher,
        GestureGenerator({"flick": flick}, seed=10).generate_strokes(10)["flick"],
        t0=1000.0,
    )
    print(f"\nrecorded {trainer.example_count('flick')} examples of 'flick'")

    # Retrain (instant — closed form over sufficient statistics) and swap.
    handler.recognizer = trainer.build()
    print(f"classifier now knows: {handler.recognizer.class_names}")

    flick_user = GestureGenerator({"flick": flick}, seed=11)
    for event in stroke_events(
        flick_user.generate("flick").stroke.translated(300, 300), t0=2000.0
    ):
        app.dispatch(event)
    print(f"user drew a flick -> application saw: {actions[-1]!r}")

    for event in stroke_events(
        user.generate("D").stroke.translated(300, 300), t0=3000.0
    ):
        app.dispatch(event)
    print(f"user drew a D     -> application saw: {actions[-1]!r}")


if __name__ == "__main__":
    main()
