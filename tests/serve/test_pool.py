"""SessionPool lifecycle, error isolation, and mode equivalence."""

from __future__ import annotations

import pytest

from repro.serve import (
    SessionPool,
    compare_modes,
    family_templates,
    generate_workload,
)


def _square_points(n=8, step=6.0):
    """A brisk diagonal stroke: n points, 10 ms apart."""
    return [(i * step, i * step, i * 0.01) for i in range(n)]


def _drive_stroke(pool, key, points, up=True):
    decisions = []
    for i, (x, y, t) in enumerate(points):
        if i == 0:
            pool.down(key, x, y, t)
        else:
            pool.move(key, x, y, t)
        decisions.extend(pool.advance_to(t))
    if up:
        x, y, t = points[-1]
        pool.up(key, x, y, t)
        decisions.extend(pool.advance_to(t))
    return decisions


@pytest.fixture(params=[True, False], ids=["batched", "sequential"])
def pool(request, directions_recognizer):
    return SessionPool(
        directions_recognizer, batched=request.param, max_sessions=8
    )


class TestLifecycle:
    def test_full_stroke_decides_and_commits(self, pool):
        decisions = _drive_stroke(pool, "s1", _square_points())
        kinds = [d.kind for d in decisions]
        assert kinds.count("recog") == 1
        assert kinds[-1] == "commit"
        recog = decisions[kinds.index("recog")]
        assert recog.class_name is not None
        assert recog.points_seen >= pool.recognizer.min_points
        assert "s1" not in pool
        assert len(pool) == 0

    def test_motionless_timeout_fires_at_last_t_plus_timeout(self, pool):
        # Two points stay below min_points, so eager recognition cannot
        # preempt the timeout — the decision must come from the pause.
        points = _square_points(2)
        for i, (x, y, t) in enumerate(points):
            (pool.down if i == 0 else pool.move)("s1", x, y, t)
        last_t = points[-1][2]
        # Just short of the deadline: nothing fires.
        assert pool.advance_to(last_t + pool.timeout * 0.99) == []
        fired = pool.advance_to(last_t + pool.timeout)
        assert len(fired) == 1
        assert fired[0].kind == "recog"
        assert fired[0].reason == "timeout"
        assert fired[0].t == pytest.approx(last_t + pool.timeout)
        # The session survives the decision, in its manipulation phase.
        assert "s1" in pool

    def test_manipulation_phase_is_silent_then_commits(self, pool):
        points = _square_points(4)
        for i, (x, y, t) in enumerate(points):
            (pool.down if i == 0 else pool.move)("s1", x, y, t)
        pool.advance_to(points[-1][2] + pool.timeout)
        # Post-decision moves emit nothing; the client already has the class.
        pool.move("s1", 99.0, 99.0, 1.0)
        assert pool.advance_to(1.0) == []
        pool.up("s1", 99.0, 99.0, 1.1)
        (commit,) = pool.advance_to(1.1)
        assert commit.kind == "commit"
        assert len(pool) == 0

    def test_evict_idle_reclaims_abandoned_sessions(self, pool):
        pool.down("gone", 0.0, 0.0, 0.0)
        pool.down("fresh", 0.0, 0.0, 29.0)
        pool.advance_to(29.0)
        evicted = pool.evict_idle(max_idle=10.0)
        assert [d.key for d in evicted if d.kind == "evict"] == ["gone"]
        assert "gone" not in pool and "fresh" in pool
        # The evicted slot is reusable immediately.
        pool.down("next", 0.0, 0.0, 29.0)
        assert not any(
            d.kind == "error" for d in pool.advance_to(29.0)
        )


class TestErrors:
    def test_duplicate_down_errors_without_killing_session(self, pool):
        pool.down("s1", 0.0, 0.0, 0.0)
        pool.down("s1", 1.0, 1.0, 0.01)
        errors = [d for d in pool.advance_to(0.01) if d.kind == "error"]
        assert [e.reason for e in errors] == ["duplicate down"]
        assert "s1" in pool  # the original session is untouched

    def test_move_and_up_on_unknown_stroke(self, pool):
        pool.move("ghost", 1.0, 1.0, 0.0)
        pool.up("ghost2", 1.0, 1.0, 0.0)
        errors = pool.advance_to(0.0)
        assert [e.reason for e in errors] == ["unknown stroke"] * 2

    def test_pool_full_rejects_only_the_overflowing_down(self, pool):
        for i in range(pool.max_sessions):
            pool.down(f"s{i}", 0.0, 0.0, 0.0)
        pool.down("overflow", 0.0, 0.0, 0.0)
        decisions = pool.advance_to(0.0)
        errors = [d for d in decisions if d.kind == "error"]
        assert [e.key for e in errors] == ["overflow"]
        assert [e.reason for e in errors] == ["pool full"]
        assert len(pool) == pool.max_sessions

    def test_errors_never_disturb_other_sessions(self, pool):
        points = _square_points()
        decisions = []
        for i, (x, y, t) in enumerate(points):
            if i == 0:
                pool.down("good", x, y, t)
            else:
                pool.move("good", x, y, t)
            pool.move("ghost", x, y, t)  # unknown stroke, every tick
            decisions.extend(pool.advance_to(t))
        pool.up("good", *points[-1][:2], points[-1][2])
        decisions.extend(pool.advance_to(points[-1][2]))
        good = [d for d in decisions if d.key == "good"]
        assert [d.kind for d in good][-1] == "commit"
        assert all(d.kind != "error" for d in good)


class TestModeEquivalence:
    @pytest.mark.parametrize("family", ["directions", "gdp", "notes", "ud"])
    def test_decision_streams_identical(self, family):
        from repro.eager import train_eager_recognizer
        from repro.synth import GestureGenerator

        templates = family_templates(family)
        generator = GestureGenerator(templates, seed=3)
        recognizer = train_eager_recognizer(
            generator.generate_strokes(10)
        ).recognizer
        workload = generate_workload(
            templates, clients=6, gestures_per_client=3, seed=13
        )
        batched, sequential = compare_modes(recognizer, workload)
        assert batched.decision_log == sequential.decision_log
        assert batched.errors == sequential.errors == 0
        assert batched.commits == sequential.commits > 0

    def test_masked_full_classifier_modes_match(self, masked_recognizer):
        """Both modes agree when the full classifier is feature-masked."""
        workload = generate_workload(
            family_templates("directions"), clients=6, gestures_per_client=3,
            seed=19,
        )
        batched, sequential = compare_modes(masked_recognizer, workload)
        assert batched.decision_log == sequential.decision_log
        assert batched.commits > 0

    def test_same_tick_interleaving_matches(self, directions_recognizer):
        """Many strokes advancing in the same submit() batches."""
        for batched in (True, False):
            pool = SessionPool(directions_recognizer, batched=batched)
            keys = [f"k{i}" for i in range(5)]
            log = []
            for tick in range(12):
                t = tick * 0.01
                ops = []
                for j, key in enumerate(keys):
                    if tick == j:  # staggered starts
                        ops.append(("down", key, 5.0 * tick + j, 3.0 * tick))
                    elif j < tick:
                        ops.append(("move", key, 5.0 * tick + j, 3.0 * tick))
                if ops:
                    pool.submit(ops, t)
                log.extend(pool.advance_to(t))
            for key in keys:
                pool.up(key, 99.0, 99.0, 0.2)
            log.extend(pool.advance_to(0.2))
            if batched:
                batched_log = log
            else:
                assert log == batched_log


class TestClockDiscipline:
    """The pool takes exactly one clock reading per tick.

    ``advance_to`` must judge every timeout against the time its own
    advance returned — re-reading ``clock.now`` afterwards could observe
    a later time (a shared clock advanced between the reads) and fire
    the motionless timeout for a stroke created within this very tick.
    """

    def test_advance_never_rereads_the_clock(self, directions_recognizer):
        from repro.events import InstrumentedClock

        clock = InstrumentedClock()
        pool = SessionPool(directions_recognizer, batched=True, clock=clock)
        for tick in range(30):
            t = tick * 0.01
            if tick == 0:
                pool.down("k", 0.0, 0.0, t)
            elif tick < 8:
                pool.move("k", 6.0 * tick, 6.0 * tick, t)
            pool.advance_to(t)
        assert clock.advances == 30
        assert clock.reads == 0, (
            "advance_to read clock.now instead of using its own advance"
        )

    def test_jumpy_clock_cannot_fire_timeouts_early(self, directions_recognizer):
        """A clock whose ``now`` property races ahead between reads.

        Before the single-read fix, the timeout scan re-read ``now`` and
        a fresh same-tick stroke would appear 10 s old — classified by
        timeout with one point.  With the fix, only the advance's return
        value counts, so the stroke lives out its dwell normally.
        """
        from repro.events import VirtualClock

        class JumpyClock(VirtualClock):
            @property
            def now(self) -> float:
                return self._now + 10.0

        pool = SessionPool(
            directions_recognizer, batched=True, clock=JumpyClock()
        )
        decisions = []
        pool.down("k", 0.0, 0.0, 0.0)
        decisions.extend(pool.advance_to(0.0))
        for tick in range(1, 6):
            t = tick * 0.01
            pool.move("k", 6.0 * tick, 6.0 * tick, t)
            decisions.extend(pool.advance_to(t))
        premature = [d for d in decisions if d.kind == "recog"]
        assert not premature, f"timeout fired early: {premature}"
        # The real dwell still fires once virtual time genuinely passes.
        decisions = pool.advance_to(1.0)
        assert [d.kind for d in decisions] == ["recog"]
        assert decisions[0].reason == "timeout"
