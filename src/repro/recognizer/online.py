"""Incremental (interactive) training.

GRANDMA was an interactive tool: a designer added example gestures — and
whole new gesture classes — to a running application, and the classifier
retrained instantly ("Training is also efficient, as there is a closed
form expression ... for determining the evaluation functions").  The
closed form needs only per-class sufficient statistics (count, feature
sum, sum of outer products), so :class:`OnlineTrainer` maintains exactly
those: adding an example is O(F^2), and building a fresh classifier is
one covariance inversion, independent of how many examples have ever
been added.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..features import NUM_FEATURES, features_of
from ..geometry import Stroke
from .classifier import GestureClassifier
from .linear import LinearClassifier
from .mahalanobis import MahalanobisMetric
from .training import TrainingResult, regularized_inverse

__all__ = ["OnlineTrainer"]


@dataclass
class _ClassStats:
    """Sufficient statistics of one gesture class."""

    count: int = 0
    feature_sum: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_FEATURES)
    )
    outer_sum: np.ndarray = field(
        default_factory=lambda: np.zeros((NUM_FEATURES, NUM_FEATURES))
    )

    def add(self, vector: np.ndarray) -> None:
        self.count += 1
        self.feature_sum += vector
        self.outer_sum += np.outer(vector, vector)

    @property
    def mean(self) -> np.ndarray:
        return self.feature_sum / self.count

    @property
    def scatter(self) -> np.ndarray:
        mean = self.mean
        return self.outer_sum - self.count * np.outer(mean, mean)


class OnlineTrainer:
    """Accumulates examples; builds classifiers on demand.

    Usage, mirroring GRANDMA's add-a-gesture-at-runtime flow::

        trainer = OnlineTrainer()
        for stroke in recorded:            # designer draws examples
            trainer.add_example("lasso", stroke)
        handler.recognizer = trainer.build()   # live immediately
    """

    def __init__(self, num_features: int = NUM_FEATURES):
        self.num_features = num_features
        self._stats: dict[str, _ClassStats] = {}

    # -- accumulating -------------------------------------------------------

    def add_example(self, class_name: str, stroke: Stroke) -> None:
        """Fold one example stroke into a class (creating it if new)."""
        self.add_feature_vector(class_name, features_of(stroke))

    def add_feature_vector(self, class_name: str, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.num_features,):
            raise ValueError(
                f"expected {self.num_features} features, got {vector.shape}"
            )
        self._stats.setdefault(class_name, _ClassStats()).add(vector)

    def remove_class(self, class_name: str) -> bool:
        """Forget a class entirely; returns False if unknown."""
        return self._stats.pop(class_name, None) is not None

    # -- introspection ---------------------------------------------------------

    @property
    def class_names(self) -> list[str]:
        return list(self._stats.keys())

    def example_count(self, class_name: str) -> int:
        stats = self._stats.get(class_name)
        return 0 if stats is None else stats.count

    @property
    def total_examples(self) -> int:
        return sum(s.count for s in self._stats.values())

    # -- building ----------------------------------------------------------------

    def build(self) -> GestureClassifier:
        """A classifier over everything accumulated so far.

        Produces the same classifier batch training on the same examples
        would (sufficient statistics are lossless for LDA).

        Raises:
            ValueError: with fewer than two classes, or an empty class.
        """
        if len(self._stats) < 2:
            raise ValueError("need at least two classes to discriminate")
        names = list(self._stats.keys())
        means = np.vstack([self._stats[n].mean for n in names])
        scatter = sum(self._stats[n].scatter for n in names)
        denominator = max(self.total_examples - len(names), 1)
        covariance = scatter / denominator
        inv_cov = regularized_inverse(covariance)
        weights = means @ inv_cov.T
        constants = -0.5 * np.einsum("cf,cf->c", weights, means)
        return GestureClassifier(
            TrainingResult(
                classifier=LinearClassifier(names, weights, constants),
                means=means,
                metric=MahalanobisMetric(inv_cov),
            )
        )
