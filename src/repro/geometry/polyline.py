"""Polyline analysis helpers.

Corner detection supplies the *oracle unambiguity point* used when
reproducing figure 9: the paper's author determined by hand the number of
mouse points "from the start through the corner turn"; our synthetic
gestures carry ground truth, but recorded or replayed strokes need the
corner found geometrically.  Hit-testing helpers support GDP's delete /
group / edit gestures, which select shapes by touching or enclosing them.
"""

from __future__ import annotations

import math

from .stroke import Stroke

__all__ = [
    "find_corner_indices",
    "point_segment_distance",
    "stroke_hits_point",
    "polygon_contains",
    "stroke_self_closes",
]


def find_corner_indices(
    stroke: Stroke,
    min_turn: float = math.pi / 4,
    window: int = 2,
) -> list[int]:
    """Indices of high-curvature points ("corners") along a stroke.

    A point is a corner when the direction of travel over ``window`` points
    before it and ``window`` points after it differs by at least
    ``min_turn`` radians.  Consecutive qualifying points are merged to the
    single sharpest one.
    """
    pts = list(stroke.deduplicated())
    n = len(pts)
    if n < 2 * window + 1:
        return []
    turns: list[tuple[int, float]] = []
    for i in range(window, n - window):
        before = math.atan2(
            pts[i].y - pts[i - window].y, pts[i].x - pts[i - window].x
        )
        after = math.atan2(
            pts[i + window].y - pts[i].y, pts[i + window].x - pts[i].x
        )
        diff = abs(_wrap_angle(after - before))
        if diff >= min_turn:
            turns.append((i, diff))
    corners: list[int] = []
    run: list[tuple[int, float]] = []
    for idx, diff in turns:
        if run and idx != run[-1][0] + 1:
            corners.append(max(run, key=lambda item: item[1])[0])
            run = []
        run.append((idx, diff))
    if run:
        corners.append(max(run, key=lambda item: item[1])[0])
    return corners


def _wrap_angle(theta: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    while theta > math.pi:
        theta -= 2 * math.pi
    while theta <= -math.pi:
        theta += 2 * math.pi
    return theta


def point_segment_distance(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """Distance from point ``(px, py)`` to segment ``(a, b)``."""
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    u = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    u = min(max(u, 0.0), 1.0)
    return math.hypot(px - (ax + u * dx), py - (ay + u * dy))


def stroke_hits_point(stroke: Stroke, x: float, y: float, tolerance: float) -> bool:
    """True if ``(x, y)`` lies within ``tolerance`` of the stroke's path."""
    pts = list(stroke)
    if not pts:
        return False
    if len(pts) == 1:
        return math.hypot(pts[0].x - x, pts[0].y - y) <= tolerance
    for a, b in zip(pts, pts[1:]):
        if point_segment_distance(x, y, a.x, a.y, b.x, b.y) <= tolerance:
            return True
    return False


def polygon_contains(polygon: Stroke, x: float, y: float) -> bool:
    """Even-odd test: is ``(x, y)`` inside the polygon traced by the stroke?

    The polygon is implicitly closed from the last point back to the
    first, which matches how GDP's circling ``group`` gesture encloses
    objects without the user perfectly closing the loop.
    """
    pts = list(polygon)
    if len(pts) < 3:
        return False
    inside = False
    j = len(pts) - 1
    for i in range(len(pts)):
        xi, yi = pts[i].x, pts[i].y
        xj, yj = pts[j].x, pts[j].y
        if (yi > y) != (yj > y):
            x_cross = xi + (y - yi) / (yj - yi) * (xj - xi)
            if x < x_cross:
                inside = not inside
        j = i
    return inside


def stroke_self_closes(stroke: Stroke, closure_fraction: float = 0.25) -> bool:
    """Heuristic: does the stroke loop back near its start?

    True when the gap between endpoints is smaller than
    ``closure_fraction`` of the arc length — the signature of a circling
    gesture such as GDP's ``group`` or ``ellipse``.
    """
    if len(stroke) < 3:
        return False
    total = stroke.path_length()
    if total == 0.0:
        return False
    gap = stroke.start.distance_to(stroke.end)
    return gap <= closure_fraction * total
