"""Rubine's incremental features for a whole pool of strokes at once.

:class:`~repro.features.IncrementalFeatures` folds one stroke's points
into 13 features in O(1) per point — but it is a Python object, and a
service advancing thousands of strokes pays the interpreter once per
session per point.  :class:`FeatureBank` keeps the same state for up to
``capacity`` strokes in one flat numpy matrix (one row per stroke, one
column per accumulator), so one *tick* (one new point for each of n
sessions) updates every session with a fixed number of vectorized
operations, independent of n.  Each bulk operation starts with a single
row gather ``state[slots]`` and works on column views of that copy —
one fancy index instead of one per accumulator.

The arithmetic deliberately mirrors ``IncrementalFeatures.add_point`` /
``.vector`` operation for operation.  Additions, multiplications,
divisions, comparisons and ``sqrt`` are IEEE-identical between ``math``
and numpy, so the accumulator state (arc length, turn angles, speeds,
bounding box) matches the scalar path bit for bit except through
``arctan2`` and ``hypot``, whose libm implementations may differ from
``math.atan2`` / ``math.hypot`` by an ulp.  Those discrepancies are
bounded and surfaced to the caller:

* :meth:`features` returns a ``guard_risk`` flag per row, set when a
  normalization guard (``d > 1e-3``) is within floating-point slack of
  its threshold — the only place an ulp can change a feature by O(1);
* :meth:`counts` feeds the per-point *drift* bound of
  :class:`repro.serve.batch.BatchEvaluator`, which covers the ulp-sized
  differences everywhere else.

Rows that trip neither check are guaranteed to classify identically to
the scalar path; rows that do are re-decided sequentially by the pool.

**The quality sidecar.**  The one consumer that needs *value-level*
bit-identity — :class:`repro.obs.QualityMonitor`, whose margins and
Mahalanobis distances are pinned byte-for-byte by golden traces — cannot
read :meth:`features` rows directly, because ``np.arctan2`` /
``np.hypot`` demonstrably diverge from ``math.atan2`` / ``math.hypot``
on real coordinates (SIMD libm kernels round differently in the last
ulp).  Opting in with ``quality=True`` adds a per-slot *log* of the
turning segments' cross and dot products — numbers the vectorized tick
already computed, each bit-identical to what the scalar path derives
from the same accumulators — appended with one scatter per tick.
:meth:`quality_state` snapshots a slot's raw deltas plus a copy of its
log; :func:`~repro.features.fold_turn_angles` and
:func:`~repro.features.vector_from_snapshot` then replay the scalar
``math.atan2`` fold (same operands, same order) and assemble the full
vector with ``math`` operations only, so the result is bit-identical
to a scalar replay of the slot's points.  The hot path pays a
vectorized append per tick and two small memcpys per decision; every
transcendental runs at read time.  The sidecar is write-only extra
state: the decision path (:meth:`features`, the evaluator, the guard
flags) never reads it, which is what keeps "attach quality" provably
decision-neutral.
"""

from __future__ import annotations

import numpy as np

from ..features.incremental import fold_turn_angles, vector_from_snapshot
from ..features.rubine import _MIN_DISTANCE, _MIN_DT, _MIN_SEGMENT_SQ, NUM_FEATURES

__all__ = ["FeatureBank"]

# A guard comparison `d > _MIN_DISTANCE` can only disagree between the
# scalar and vectorized hypot when d lands within a few ulps of the
# threshold; flag anything within a generous multiple.
_GUARD_SLACK = 16.0 * np.finfo(float).eps * _MIN_DISTANCE

# State-matrix columns, one accumulator per column.  Fields written
# together are adjacent so updates land as one block scatter
# (``state[slots, a:b] = block``) instead of one scatter per field.
(
    _FIRST_X,
    _FIRST_Y,
    _FIRST_T,
    _THIRD_X,
    _THIRD_Y,
    _LAST_X,
    _LAST_Y,
    _LAST_T,
    _COUNT,
    _MIN_X,
    _MIN_Y,
    _MAX_X,
    _MAX_Y,
    _TOTAL_LEN,
    _TOTAL_ANGLE,
    _TOTAL_ABS,
    _SHARPNESS,
    _MAX_SPEED_SQ,
    _PREV_DX,
    _PREV_DY,
    _HAS_PREV,
) = range(21)
_NUM_COLUMNS = 21

_EMPTY_ROW = np.zeros(_NUM_COLUMNS)
_EMPTY_ROW[_MIN_X] = _EMPTY_ROW[_MIN_Y] = np.inf
_EMPTY_ROW[_MAX_X] = _EMPTY_ROW[_MAX_Y] = -np.inf


class FeatureBank:
    """Vectorized incremental feature state for ``capacity`` strokes.

    ``quality=True`` additionally maintains the cross/dot sidecar log
    that :meth:`quality_state` / :meth:`quality_vector` read; leave it
    off (the default) and the tick pays nothing for it.
    """

    # Initial sidecar log width (turning points per stroke); the log
    # doubles on demand, so this only sets where growth starts.
    _Q_LOG_WIDTH = 128

    def __init__(self, capacity: int, *, quality: bool = False):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.quality = quality
        self._state = np.zeros((capacity, _NUM_COLUMNS))
        self._free = list(range(capacity - 1, -1, -1))
        # The quality sidecar: one row of logged cross/dot products per
        # slot (column j = the slot's j-th turning point), plus a
        # per-slot entry count.  Entries beyond a slot's count are
        # stale garbage from earlier occupants — never read.
        if quality:
            self._q_cross = np.zeros((capacity, self._Q_LOG_WIDTH))
            self._q_dot = np.zeros((capacity, self._Q_LOG_WIDTH))
            self._q_len = np.zeros(capacity, dtype=np.intp)

    # -- slot management -----------------------------------------------------

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def open_slot(self) -> int:
        """Claim a slot for a new stroke; its state starts empty."""
        if not self._free:
            raise IndexError("feature bank is full")
        slot = self._free.pop()
        self._state[slot] = _EMPTY_ROW
        if self.quality:
            self._q_len[slot] = 0
        return slot

    def close_slot(self, slot: int) -> None:
        """Release a slot back to the free list."""
        self._free.append(slot)

    def counts(self, slots: np.ndarray) -> np.ndarray:
        """Points seen per slot (as floats, straight from the state row)."""
        return self._state[slots, _COUNT]

    def count_of(self, slot: int) -> int:
        """Points seen by one slot."""
        return int(self._state[slot, _COUNT])

    # -- the vectorized tick -------------------------------------------------

    def add_points(
        self, slots: np.ndarray, x: np.ndarray, y: np.ndarray, t: np.ndarray
    ) -> np.ndarray:
        """Fold one new point into each of the given slots.

        ``slots`` must not contain duplicates — a tick delivers at most
        one point per stroke, exactly like the per-session loop (the row
        gather below reads each slot's state once, so a duplicate would
        fold against a stale row).

        Returns the slots' updated point counts (a view; read-only use).
        """
        st = self._state
        rows = st[slots]  # one gather; every read below is from this copy
        n = len(rows)
        cnt = rows[:, _COUNT]

        # In steady state a tick carries moves only (every count >= 1):
        # the starting/anchoring masks are empty, the segment mask is
        # full, and the fast paths below skip the subset gathers.
        starting = cnt == 0.0
        if starting.any():
            blk = np.empty((int(starting.sum()), 3))
            blk[:, 0] = x[starting]
            blk[:, 1] = y[starting]
            blk[:, 2] = t[starting]
            st[slots[starting], _FIRST_X : _FIRST_T + 1] = blk
        # Points 1 and 2 both update the initial-angle anchor, matching
        # IncrementalFeatures (a 2-point prefix anchors on its last point).
        anchoring = (cnt >= 1.0) & (cnt <= 2.0)
        if anchoring.any():
            blk = np.empty((int(anchoring.sum()), 2))
            blk[:, 0] = x[anchoring]
            blk[:, 1] = y[anchoring]
            st[slots[anchoring], _THIRD_X : _THIRD_Y + 1] = blk

        blk = np.empty((n, 4))
        np.minimum(rows[:, _MIN_X], x, out=blk[:, 0])
        np.minimum(rows[:, _MIN_Y], y, out=blk[:, 1])
        np.maximum(rows[:, _MAX_X], x, out=blk[:, 2])
        np.maximum(rows[:, _MAX_Y], y, out=blk[:, 3])
        st[slots, _MIN_X : _MAX_Y + 1] = blk

        seg = cnt >= 1.0
        if seg.all():
            s, r, px, py, pt = slots, rows, x, y, t
        elif seg.any():
            s = slots[seg]
            r = rows[seg]
            px, py, pt = x[seg], y[seg], t[seg]
        else:
            s = None
        if s is not None:
            dx = px - r[:, _LAST_X]
            dy = py - r[:, _LAST_Y]
            seg_sq = dx * dx + dy * dy
            st[s, _TOTAL_LEN] = r[:, _TOTAL_LEN] + np.sqrt(seg_sq)
            dt = pt - r[:, _LAST_T]
            timed = dt >= _MIN_DT
            if timed.all():
                st[s, _MAX_SPEED_SQ] = np.maximum(
                    r[:, _MAX_SPEED_SQ], seg_sq / (dt * dt)
                )
            elif timed.any():
                speed_sq = seg_sq[timed] / (dt[timed] * dt[timed])
                st[s[timed], _MAX_SPEED_SQ] = np.maximum(
                    r[timed, _MAX_SPEED_SQ], speed_sq
                )
            pdx = r[:, _PREV_DX]
            pdy = r[:, _PREV_DY]
            turning = (
                (r[:, _HAS_PREV] != 0.0)
                & (seg_sq >= _MIN_SEGMENT_SQ)
                & (pdx * pdx + pdy * pdy >= _MIN_SEGMENT_SQ)
            )
            if turning.all():
                cross = pdx * dy - pdy * dx
                dot = pdx * dx + pdy * dy
                theta = np.arctan2(cross, dot)
                blk = np.empty((len(theta), 3))
                np.add(r[:, _TOTAL_ANGLE], theta, out=blk[:, 0])
                np.add(r[:, _TOTAL_ABS], np.abs(theta), out=blk[:, 1])
                np.add(r[:, _SHARPNESS], theta * theta, out=blk[:, 2])
                st[s, _TOTAL_ANGLE : _SHARPNESS + 1] = blk
                if self.quality:
                    self._fold_quality(s, cross, dot)
            elif turning.any():
                cross = pdx[turning] * dy[turning] - pdy[turning] * dx[turning]
                dot = pdx[turning] * dx[turning] + pdy[turning] * dy[turning]
                theta = np.arctan2(cross, dot)
                tgt = s[turning]
                st[tgt, _TOTAL_ANGLE] = r[turning, _TOTAL_ANGLE] + theta
                st[tgt, _TOTAL_ABS] = r[turning, _TOTAL_ABS] + np.abs(theta)
                st[tgt, _SHARPNESS] = r[turning, _SHARPNESS] + theta * theta
                if self.quality:
                    self._fold_quality(tgt, cross, dot)
            moved = seg_sq > 0.0
            if moved.all():
                blk = np.empty((len(dx), 3))
                blk[:, 0] = dx
                blk[:, 1] = dy
                blk[:, 2] = 1.0
                st[s, _PREV_DX : _HAS_PREV + 1] = blk
            elif moved.any():
                tgt = s[moved]
                st[tgt, _PREV_DX] = dx[moved]
                st[tgt, _PREV_DY] = dy[moved]
                st[tgt, _HAS_PREV] = 1.0

        blk = np.empty((n, 4))
        blk[:, 0] = x
        blk[:, 1] = y
        blk[:, 2] = t
        np.add(cnt, 1.0, out=blk[:, 3])
        st[slots, _LAST_X : _COUNT + 1] = blk
        return blk[:, 3]

    # -- feature assembly ----------------------------------------------------

    def features(
        self, slots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current feature rows for the given slots.

        Every slot must have seen at least one point.

        Returns:
            ``(F, counts, guard_risk)`` — an ``(n, 13)`` feature matrix,
            the slots' point counts (free: a view of the same row
            gather), and a boolean row flag set where a normalization
            guard sits within floating-point slack of its threshold (see
            module docstring).
        """
        r = self._state[slots]
        fx = r[:, _FIRST_X]
        fy = r[:, _FIRST_Y]

        anchored = r[:, _COUNT] >= 2.0
        dx0 = np.where(anchored, r[:, _THIRD_X], fx) - fx
        dy0 = np.where(anchored, r[:, _THIRD_Y], fy) - fy
        d0 = np.hypot(dx0, dy0)

        f = np.zeros((len(slots), NUM_FEATURES))
        initial = d0 > _MIN_DISTANCE
        np.divide(dx0, d0, out=f[:, 0], where=initial)
        np.divide(dy0, d0, out=f[:, 1], where=initial)

        width = r[:, _MAX_X] - r[:, _MIN_X]
        height = r[:, _MAX_Y] - r[:, _MIN_Y]
        f[:, 2] = np.hypot(width, height)
        f[:, 3] = np.arctan2(height, width)  # atan2(0, 0) == 0, as guarded

        dxe = r[:, _LAST_X] - fx
        dye = r[:, _LAST_Y] - fy
        de = np.hypot(dxe, dye)
        f[:, 4] = de
        chord = de > _MIN_DISTANCE
        np.divide(dxe, de, out=f[:, 5], where=chord)
        np.divide(dye, de, out=f[:, 6], where=chord)

        f[:, 7] = r[:, _TOTAL_LEN]
        f[:, 8] = r[:, _TOTAL_ANGLE]
        f[:, 9] = r[:, _TOTAL_ABS]
        f[:, 10] = r[:, _SHARPNESS]
        f[:, 11] = r[:, _MAX_SPEED_SQ]
        f[:, 12] = r[:, _LAST_T] - r[:, _FIRST_T]

        guard_risk = (np.abs(d0 - _MIN_DISTANCE) <= _GUARD_SLACK) | (
            np.abs(de - _MIN_DISTANCE) <= _GUARD_SLACK
        )
        return f, r[:, _COUNT], guard_risk

    # -- the quality sidecar -------------------------------------------------

    def _fold_quality(self, tgt: np.ndarray, cross, dot):
        """Append this tick's turning products to the sidecar log.

        ``cross``/``dot`` are the turning rows' cross and dot products —
        already computed by the vectorized tick, each bit-identical to
        what the scalar path computes from the same accumulators.
        Logging them (instead of folding thetas here) keeps the tick
        free of scalar ``atan2`` calls; one point per slot per tick
        means column order per slot is exactly the scalar fold order.

        The scatter raises ``IndexError`` when a stroke outgrows the
        log width; any elements written before the raise land at their
        final positions, so doubling the log and redoing the identical
        assignment is safe.
        """
        idx = self._q_len[tgt]
        while True:
            try:
                self._q_cross[tgt, idx] = cross
                self._q_dot[tgt, idx] = dot
                break
            except IndexError:
                width = self._q_cross.shape[1]
                for name in ("_q_cross", "_q_dot"):
                    old = getattr(self, name)
                    new = np.zeros((self.capacity, width * 2))
                    new[:, :width] = old
                    setattr(self, name, new)
        self._q_len[tgt] = idx + 1

    def quality_state(self, slot: int) -> tuple:
        """The slot's raw feature snapshot: nine scalars plus the log.

        Requires a bank built with ``quality=True`` and a slot that has
        seen at least one point.  The tuple is ``(dx0, dy0, width,
        height, dxe, dye, total_len, crosses, dots, max_speed_sq,
        duration)`` — the scalar entries are the deltas
        :func:`~repro.features.vector_from_snapshot` takes, produced
        with subtractions only (IEEE-exact); ``crosses``/``dots`` are
        owned copies of the slot's turning-product log, from which
        :func:`~repro.features.fold_turn_angles` reproduces the three
        turn-angle accumulators bit-exactly.  Capturing this instead of
        the assembled vector keeps the per-decision hot-path cost to a
        row read plus two small memcpys; every ``hypot``/``atan2``/
        divide runs wherever the snapshot is consumed (the quality
        monitor defers them to scrape time).
        """
        row = self._state[slot].tolist()
        fx = row[_FIRST_X]
        fy = row[_FIRST_Y]
        if row[_COUNT] >= 2.0:
            dx0 = row[_THIRD_X] - fx
            dy0 = row[_THIRD_Y] - fy
        else:
            # A 1-point prefix anchors on its first point (x - x).
            dx0 = fx - fx
            dy0 = fy - fy
        n = self._q_len[slot]
        return (
            dx0,
            dy0,
            row[_MAX_X] - row[_MIN_X],
            row[_MAX_Y] - row[_MIN_Y],
            row[_LAST_X] - fx,
            row[_LAST_Y] - fy,
            row[_TOTAL_LEN],
            self._q_cross[slot, :n].copy(),
            self._q_dot[slot, :n].copy(),
            row[_MAX_SPEED_SQ],
            row[_LAST_T] - row[_FIRST_T],
        )

    def quality_vector(self, slot: int) -> np.ndarray:
        """The slot's feature vector, bit-identical to a scalar replay.

        :meth:`quality_state` assembled eagerly through
        :func:`~repro.features.fold_turn_angles` and
        :func:`~repro.features.vector_from_snapshot`: every operation on
        the path is literally the operation ``IncrementalFeatures``
        performs, so the result equals replaying the slot's points
        through the scalar path without touching them.
        """
        state = self.quality_state(slot)
        angle, abs_angle, sharp = fold_turn_angles(state[7], state[8])
        return vector_from_snapshot(
            *state[:7], angle, abs_angle, sharp, *state[9:]
        )
