"""Per-modality collection→manipulation semantics.

The paper's two-phase cycle is *collect points → classify → manipulate*.
Each modality reinterprets those phases over the unchanged serving
protocol — the pool still sees only down/move/up and still emits the
same decisions; the semantics layer reads the op stream and the
decision stream side by side and turns them into
:class:`ModalEvent` streams:

* **hold** — the motionless timeout, which for plain strokes merely
  *ends collection*, becomes a **promotion**: a timeout decision on a
  press that stayed within ``hold_max_drift`` begins hold manipulation
  (the drag-after-hold), confirmed once the press is
  ``hold_duration`` old.  A jittery hold that never goes motionless
  decides at mouse-up instead and fires begin+end there.
* **tap / double-tap** — decided strokes within the tap bounds feed the
  cross-stroke :class:`~repro.modal.detectors.TapTracker`; its timing
  windows and debounce live entirely *between* strokes, where the pool
  has no state at all.
* **scroll** — collection ends at the recognizer's decision as usual,
  but manipulation is **axis-locked**: every post-decision move emits a
  delta projected onto the axis the
  :class:`~repro.modal.detectors.ScrollAxisLock` committed to during
  collection.  Once vertical, never horizontal.
* **swipe / flick** — detection is dynamic: the velocity window can
  qualify a flick mid-collection; the event fires as soon as *both*
  the window has hit and the recognizer has decided the class.  A
  stroke classified as a swipe whose window never qualified (too slow,
  too curved) emits a ``reject`` event naming the failed check.
* **pinch / rotate** — two concurrent sessions compose into one
  manipulation: :class:`PairSemantics` anchors a
  :class:`~repro.modal.detectors.PairTracker` when the second finger
  lands and streams TRS updates once a commitment threshold names the
  manipulation.

Everything here is a pure function of (ops, decisions, config): no
randomness, no wall clock.  Two runs that produce identical decision
streams produce identical modal event streams — the composer's tests
assert exactly that across batched/sequential and observed/bare runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synth.modal import modality_of
from .config import ModalityConfig
from .detectors import (
    HoldDetector,
    PairTracker,
    ScrollAxisLock,
    SwipeDetector,
    SwipeHit,
    edge_of,
)

__all__ = [
    "MODALITIES",
    "ModalEvent",
    "PairSemantics",
    "StrokeSemantics",
    "modality_of",  # re-exported from repro.synth.modal
]

# Every modality the layer can emit events for.
MODALITIES = ("tap", "hold", "scroll", "swipe", "pinch", "rotate")


@dataclass(frozen=True)
class ModalEvent:
    """One modality-level event, derived from ops + decisions.

    ``kind`` is ``begin``/``update``/``end`` for manipulations (hold,
    scroll, pinch/rotate), ``fire`` for instantaneous gestures (tap,
    double-tap — as ``modality="tap"`` with ``data["count"]`` — and
    swipe), and ``reject`` for a classified swipe that failed the
    kinematic checks.
    """

    key: str
    modality: str
    kind: str
    t: float
    class_name: str | None = None
    data: dict = field(default_factory=dict)


class StrokeSemantics:
    """One single-finger stroke's modality state machine.

    The owner (:class:`~repro.modal.compose.ModalComposer`) feeds it
    the stroke's ops, its pool decisions, and tick boundaries; it
    returns the modal events each input produces.  The recognizer's
    class — via :func:`modality_of` — routes which modality's
    semantics interpret the stroke; the kinematic detectors supply the
    state those semantics need (axis locks, velocity windows, drift).
    """

    def __init__(
        self,
        key: str,
        x: float,
        y: float,
        t: float,
        config: ModalityConfig,
        viewport: tuple[float, float] | None = None,
    ):
        self.key = key
        self.config = config
        self.down = (x, y, t)
        self.last = (x, y, t)
        self.points = 1
        self.hold = HoldDetector(config, x, y, t)
        self.scroll = ScrollAxisLock(config, x, y)
        self.swipe = SwipeDetector(config)
        self.swipe.feed(x, y, t)
        self.edge = (
            None if viewport is None
            else edge_of(x, y, viewport, config.edge_margin)
        )
        self.class_name: str | None = None
        self.modality: str | None = None
        self.decided_t: float | None = None
        # Pending / emitted manipulation state.
        self.hold_pending_at: float | None = None
        self.hold_begun = False
        self.scroll_begun = False
        self.swipe_hit: SwipeHit | None = None
        self.swipe_fired = False
        self.scrolled = 0.0
        self.closed = False

    # -- op stream -----------------------------------------------------------

    def on_move(self, x: float, y: float, t: float) -> list[ModalEvent]:
        events: list[ModalEvent] = []
        self.points += 1
        self.hold.move(x, y)
        hit = self.swipe.feed(x, y, t)
        if hit is not None and self.swipe_hit is None:
            self.swipe_hit = hit
        locked = self.scroll.feed(x, y)
        self.last = (x, y, t)
        if self.modality == "scroll" and locked is not None:
            axis, delta = locked
            if not self.scroll_begun:
                # The lock engaged after the decision: manipulation
                # begins at the lock, not at the decision.
                self.scroll_begun = True
                events.append(self._event("scroll", "begin", t, axis=axis))
            self.scrolled += delta
            events.append(
                self._event("scroll", "update", t, axis=axis, delta=delta)
            )
        if self.modality == "swipe" and not self.swipe_fired and (
            self.swipe_hit is not None
        ):
            events.append(self._swipe_fire(t))
        if self.hold_begun:
            events.append(
                self._event(
                    "hold", "update", t,
                    dx=x - self.down[0], dy=y - self.down[1],
                )
            )
        return events

    def on_up(self, x: float, y: float, t: float) -> None:
        """The up op only records position; decisions close the stroke."""
        self.last = (x, y, t)

    # -- decision stream -----------------------------------------------------

    def on_decision(self, kind: str, reason: str | None,
                    class_name: str | None, t: float) -> list[ModalEvent]:
        if kind == "recog":
            return self._on_recognized(reason, class_name, t)
        # commit / evict / error all end the stroke.
        return self._close(t)

    def _on_recognized(
        self, reason: str | None, class_name: str | None, t: float
    ) -> list[ModalEvent]:
        self.class_name = class_name
        self.modality = modality_of(class_name) if class_name else "stroke"
        self.decided_t = t
        events: list[ModalEvent] = []
        if self.modality == "scroll":
            if self.scroll.axis is not None:
                self.scroll_begun = True
                events.append(
                    self._event("scroll", "begin", t, axis=self.scroll.axis)
                )
            # else: begin waits for the lock to engage mid-manipulation.
        elif self.modality == "swipe":
            if self.swipe_hit is not None:
                events.append(self._swipe_fire(t))
        # Hold promotion is kinematic as well as class-routed: a
        # motionless timeout on a press that never drifted is a hold no
        # matter what the recognizer made of its few-point prefix (the
        # stillness is the signal; a 3-point blob's class is noise),
        # and an eager "hold" decision on a jittery press — samples
        # still arriving, so the motionless timeout never fires — is
        # the eager path doing its job early.
        promote = self.hold.within_drift and (
            reason == "timeout" or self.modality == "hold"
        )
        if promote:
            confirm = self.hold.confirm_time()
            if t >= confirm:
                events.extend(self._hold_begin(t))
            elif reason != "up":
                # Still down: the promotion arms and confirms once the
                # press is hold_duration old (see on_tick).
                self.hold_pending_at = confirm
            # else: released before hold_duration — too brief to hold.
        if reason == "up":
            # Decided at mouse-up: no manipulation phase follows, and
            # the pool emits no commit — close now (taps resolve here,
            # in the composer, where the cross-stroke tracker lives).
            events.extend(self._close(t))
        return events

    def on_tick(self, t: float) -> list[ModalEvent]:
        """Confirm a pending hold promotion once the press is old enough."""
        if (
            self.hold_pending_at is not None
            and not self.closed
            and t >= self.hold_pending_at
        ):
            return self._hold_begin(self.hold_pending_at)
        return []

    # -- internals -----------------------------------------------------------

    def _hold_begin(self, t: float) -> list[ModalEvent]:
        self.hold_pending_at = None
        self.hold_begun = True
        return [
            self._event(
                "hold", "begin", t,
                held_s=t - self.down[2], drift=self.hold.max_drift,
            )
        ]

    def _swipe_fire(self, t: float) -> ModalEvent:
        self.swipe_fired = True
        hit = self.swipe_hit
        data = {
            "direction": hit.direction,
            "velocity": hit.velocity,
            "linearity": hit.linearity,
        }
        if self.edge is not None:
            data["edge"] = self.edge
        return self._event("swipe", "fire", t, **data)

    def _close(self, t: float) -> list[ModalEvent]:
        if self.closed:
            return []
        self.closed = True
        events: list[ModalEvent] = []
        if self.hold_begun:
            events.append(
                self._event("hold", "end", t, held_s=t - self.down[2])
            )
        if self.scroll_begun:
            events.append(
                self._event(
                    "scroll", "end", t,
                    axis=self.scroll.axis, total=self.scrolled,
                )
            )
        if (
            self.modality == "swipe"
            and not self.swipe_fired
            and self.swipe_hit is None
        ):
            # Classified as a swipe but the window never qualified:
            # the kinematic checks (velocity floor, linearity) reject.
            events.append(
                self._event("swipe", "reject", t, reason="window")
            )
        return events

    def _event(self, modality: str, kind: str, t: float, **data) -> ModalEvent:
        return ModalEvent(
            key=self.key,
            modality=modality,
            kind=kind,
            t=t,
            class_name=self.class_name,
            data=data,
        )


class PairSemantics:
    """Two concurrent strokes composed into one TRS manipulation.

    Anchored when the second finger lands; every move of either finger
    advances the :class:`~repro.modal.detectors.PairTracker`.  The
    ``begin`` event fires when a commitment threshold names the
    manipulation (``pinch_in``/``pinch_out``/``rotate``); every update
    after that streams the accumulated gap change and turn; either
    finger's close ends it.
    """

    def __init__(
        self,
        base: str,
        config: ModalityConfig,
        a: StrokeSemantics,
        b: StrokeSemantics,
    ):
        self.base = base
        self.a = a
        self.b = b
        self.tracker = PairTracker(
            config, a.last[0], a.last[1], b.last[0], b.last[1]
        )
        self.kind: str | None = None
        self.begun = False
        self.closed = False

    def on_pair_move(self, t: float) -> list[ModalEvent]:
        if self.closed:
            return []
        ax, ay, _ = self.a.last
        bx, by, _ = self.b.last
        self.tracker.update(ax, ay, bx, by)
        events: list[ModalEvent] = []
        kind = self.tracker.classify()
        if kind is not None and not self.begun:
            self.kind = kind
            self.begun = True
            events.append(self._event("begin", t))
        elif self.begun:
            events.append(self._event("update", t))
        return events

    def on_close(self, t: float) -> list[ModalEvent]:
        if self.closed:
            return []
        self.closed = True
        if self.begun:
            return [self._event("end", t)]
        return []

    def _event(self, kind: str, t: float) -> ModalEvent:
        modality = "rotate" if self.kind == "rotate" else "pinch"
        return ModalEvent(
            key=self.base,
            modality=modality,
            kind=kind,
            t=t,
            class_name=self.a.class_name or self.b.class_name,
            data={
                "pair_kind": self.kind,
                "gap_change": self.tracker.gap_change,
                "turn": self.tracker.turn,
                "fingers": (self.a.key, self.b.key),
            },
        )


def stroke_drift(state: StrokeSemantics) -> float:
    """The stroke's maximum drift from its down point (tap gating)."""
    return state.hold.max_drift


def tap_candidate(state: StrokeSemantics) -> bool:
    """Whether a closed stroke should be offered to the tap tracker."""
    return state.modality == "tap"


