"""Integration tests for the gesture-driven score editor."""

import pytest

from repro.events import perform_gesture
from repro.geometry import Stroke
from repro.gscore import ScoreApp, score_templates, train_score_recognizer
from repro.synth import GestureGenerator


@pytest.fixture(scope="module")
def recognizer():
    return train_score_recognizer(examples_per_class=12, seed=13)


@pytest.fixture
def app(recognizer):
    return ScoreApp(recognizer=recognizer)


@pytest.fixture(scope="module")
def gestures():
    return GestureGenerator(score_templates(), seed=99)


def place(app, gestures, duration, beat, step, manip_xy=None, seed_stroke=None):
    stroke = (seed_stroke or gestures.generate(duration)).stroke
    x, y = app.staff.beat_to_x(beat), app.staff.step_to_y(step)
    stroke = stroke.translated(x - stroke.start.x, y - stroke.start.y)
    manip = Stroke.from_xy(manip_xy, dt=0.03) if manip_xy else None
    app.perform(perform_gesture(stroke, dwell=0.3, manipulation_path=manip))


class TestNoteEntry:
    def test_quarter_note_placed_with_snapping(self, app, gestures):
        place(app, gestures, "quarter", beat=2.0, step=2)
        notes = app.staff.notes
        assert len(notes) == 1
        assert notes[0].duration == "quarter"
        assert notes[0].beat == 2.0
        assert notes[0].pitch_name == "G4"

    def test_each_duration_class_enters_its_note(self, app, gestures):
        for i, duration in enumerate(
            ("quarter", "eighth", "sixteenth", "thirtysecond", "sixtyfourth")
        ):
            place(app, gestures, duration, beat=float(i), step=4)
        assert [n.duration for n in app.staff.notes] == [
            "quarter",
            "eighth",
            "sixteenth",
            "thirtysecond",
            "sixtyfourth",
        ]

    def test_manipulation_drags_pitch_and_onset(self, app, gestures):
        target_x = app.staff.beat_to_x(5.0)
        target_y = app.staff.step_to_y(9)
        place(
            app,
            gestures,
            "eighth",
            beat=1.0,
            step=1,
            manip_xy=[(target_x, target_y)],
        )
        note = app.staff.notes[0]
        assert note.beat == 5.0
        assert note.step == 9

    def test_nearby_gesture_start_snaps_to_grid(self, app, gestures):
        # Start slightly off a line/beat: the note lands on the grid.
        stroke = gestures.generate("quarter").stroke
        x = app.staff.beat_to_x(3.0) + 4.0
        y = app.staff.step_to_y(6) + 2.5
        stroke = stroke.translated(x - stroke.start.x, y - stroke.start.y)
        app.perform(perform_gesture(stroke, dwell=0.3))
        note = app.staff.notes[0]
        assert note.beat == 3.0
        assert note.step == 6


class TestErase:
    def test_erase_removes_note_under_gesture(self, app, gestures):
        place(app, gestures, "quarter", beat=2.0, step=4)
        note = app.staff.notes[0]
        erase = gestures.generate("erase").stroke
        x, y = app.staff.beat_to_x(note.beat), app.staff.step_to_y(note.step)
        erase = erase.translated(x - erase.start.x, y - erase.start.y)
        app.perform(perform_gesture(erase, dwell=0.3))
        assert app.staff.notes == ()
        assert app.last_action.startswith("erase: removed")

    def test_erase_on_empty_staff(self, app, gestures):
        erase = gestures.generate("erase").stroke.translated(300, 100)
        app.perform(perform_gesture(erase, dwell=0.3))
        assert app.last_action == "erase: no note there"


class TestRendering:
    def test_staff_lines_rendered(self, app):
        art = app.render()
        assert art.count("----") >= 5

    def test_notes_rendered_as_marks(self, app, gestures):
        place(app, gestures, "quarter", beat=2.0, step=2)
        place(app, gestures, "sixteenth", beat=4.0, step=7)
        art = app.render()
        assert "Q" in art
        assert "S" in art


class TestFigure8Consequence:
    def test_eager_mode_is_disabled(self, app):
        # The nested note gestures make eager recognition pointless
        # (figure 8); the app must rely on timeout/mouse-up transitions.
        assert not app.gesture_handler.use_eager
