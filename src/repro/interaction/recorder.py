"""Recording strokes — the input path of GRANDMA's training interface.

GRANDMA's point was that designers *train* recognizers by example, at
runtime, inside the running application.  The output half of that loop
is :class:`~repro.recognizer.OnlineTrainer`; this is the input half: an
event handler that captures raw strokes from the same dispatcher the
application runs on, so "enter ten examples of the new gesture" is just
ten ordinary mouse interactions on a recording view.
"""

from __future__ import annotations

from typing import Callable

from ..events import MouseEvent
from ..geometry import Point, Stroke
from ..mvc import DispatchContext, EventHandler, EventPredicate, View

__all__ = ["StrokeRecorder"]


class StrokeRecorder(EventHandler):
    """Captures each press-to-release interaction as a Stroke.

    Attach to the view where examples are drawn; recorded strokes
    accumulate in :attr:`strokes` and are handed to ``on_stroke`` (e.g.
    ``lambda s: trainer.add_example(current_class, s)``).
    """

    def __init__(
        self,
        on_stroke: Callable[[Stroke], None] | None = None,
        predicate: EventPredicate | None = None,
        min_points: int = 2,
    ):
        super().__init__(predicate)
        self.on_stroke = on_stroke
        self.min_points = min_points
        self.strokes: list[Stroke] = []
        self._points: list[Point] | None = None

    @property
    def recording(self) -> bool:
        return self._points is not None

    def begin(
        self, event: MouseEvent, view: View, context: DispatchContext
    ) -> bool:
        self._points = [event.point]
        return True

    def update(self, event: MouseEvent, context: DispatchContext) -> None:
        if self._points is not None:
            self._points.append(event.point)

    def end(self, event: MouseEvent, context: DispatchContext) -> None:
        points = self._points
        self._points = None
        if points is None or len(points) < self.min_points:
            return  # a stray click, not an example
        stroke = Stroke(points)
        self.strokes.append(stroke)
        if self.on_stroke is not None:
            self.on_stroke(stroke)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self.strokes.clear()
