"""Unit tests for the template-matcher baseline."""

import pytest

from repro.baselines import TemplateMatcher
from repro.geometry import Stroke
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def matcher(directions_train):
    return TemplateMatcher.train(directions_train)


class TestTraining:
    def test_stores_one_template_per_example(self, directions_train, matcher):
        total = sum(len(v) for v in directions_train.values())
        assert matcher.template_count == total

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            TemplateMatcher.train({})

    def test_too_few_resample_points_rejected(self):
        with pytest.raises(ValueError):
            TemplateMatcher(resample_points=1)


class TestClassification:
    def test_classifies_training_data(self, directions_train, matcher):
        hits = total = 0
        for name, strokes in directions_train.items():
            for stroke in strokes:
                total += 1
                hits += matcher.classify(stroke) == name
        assert hits == total  # nearest template of a training item is itself

    def test_generalizes(self, matcher):
        generator = GestureGenerator(eight_direction_templates(), seed=4141)
        hits = total = 0
        for name, strokes in generator.generate_strokes(5).items():
            for stroke in strokes:
                total += 1
                hits += matcher.classify(stroke) == name
        assert hits / total > 0.8

    def test_untrained_classifier_raises(self):
        with pytest.raises(ValueError):
            TemplateMatcher().classify(Stroke.from_xy([(0, 0), (1, 1)]))

    def test_translation_invariance(self, matcher, directions_train):
        stroke = directions_train["ur"][0]
        assert matcher.classify(stroke) == matcher.classify(
            stroke.translated(500, -300)
        )

    def test_scale_invariance(self, matcher, directions_train):
        from repro.geometry import Affine

        stroke = directions_train["dr"][0]
        scaled = stroke.transformed(Affine.scaling(2.5))
        assert matcher.classify(stroke) == matcher.classify(scaled)

    def test_degenerate_stroke_does_not_crash(self, matcher):
        # A dot-like stroke is out of set but must classify to something.
        result = matcher.classify(Stroke.from_xy([(5, 5), (5, 5)]))
        assert isinstance(result, str)


class TestRotationInvariantVariant:
    def test_rotation_invariant_mode(self, directions_train):
        import math

        from repro.geometry import Affine

        matcher = TemplateMatcher.train(
            {"ur": directions_train["ur"]}, rotation_invariant=True
        )
        stroke = directions_train["ur"][0]
        rotated = stroke.transformed(Affine.rotation(math.pi / 3))
        # Single class: the score should survive rotation (smoke check
        # that the rotate-to-zero path runs).
        assert matcher.classify(rotated) == "ur"
