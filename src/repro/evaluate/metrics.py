"""Evaluation metrics: confusion matrices, accuracy, eagerness.

The paper's §5 reports two numbers per experiment: the recognition rate
(eager vs full classifier) and the *eagerness* — "on the average, the
eager recognizer examined 67.9% of the mouse points of each gesture
before deciding the gesture was unambiguous", compared against a
hand-determined minimum.  These metrics compute both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["ConfusionMatrix", "EagernessStats"]


@dataclass
class ConfusionMatrix:
    """Counts of (true class, predicted class) pairs."""

    class_names: list[str]
    counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def record(self, true_class: str, predicted: str) -> None:
        key = (true_class, predicted)
        self.counts[key] = self.counts.get(key, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def correct(self) -> int:
        return sum(
            n for (true, predicted), n in self.counts.items() if true == predicted
        )

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def per_class_accuracy(self) -> dict[str, float]:
        totals: dict[str, int] = {}
        hits: dict[str, int] = {}
        for (true, predicted), n in self.counts.items():
            totals[true] = totals.get(true, 0) + n
            if true == predicted:
                hits[true] = hits.get(true, 0) + n
        return {
            name: hits.get(name, 0) / totals[name]
            for name in self.class_names
            if totals.get(name)
        }

    def errors(self) -> list[tuple[str, str, int]]:
        """All off-diagonal cells, heaviest first."""
        off = [
            (true, predicted, n)
            for (true, predicted), n in self.counts.items()
            if true != predicted
        ]
        return sorted(off, key=lambda item: -item[2])

    def to_table(self) -> str:
        """A plain-text matrix (rows = true class, columns = predicted)."""
        names = self.class_names
        width = max((len(n) for n in names), default=4) + 1
        header = " " * width + "".join(n[: width - 1].rjust(width) for n in names)
        rows = [header]
        for true in names:
            cells = "".join(
                str(self.counts.get((true, predicted), 0)).rjust(width)
                for predicted in names
            )
            rows.append(true.ljust(width) + cells)
        return "\n".join(rows)


@dataclass
class EagernessStats:
    """Aggregate eagerness over a test set."""

    fractions_seen: list[float] = field(default_factory=list)
    oracle_fractions: list[float] = field(default_factory=list)
    eager_count: int = 0
    total: int = 0

    def record(
        self,
        fraction_seen: float,
        eager: bool,
        oracle_fraction: float | None = None,
    ) -> None:
        self.fractions_seen.append(fraction_seen)
        if oracle_fraction is not None:
            self.oracle_fractions.append(oracle_fraction)
        if eager:
            self.eager_count += 1
        self.total += 1

    @property
    def mean_fraction_seen(self) -> float:
        """The paper's headline eagerness number (e.g. 67.9% in fig. 9)."""
        return _mean(self.fractions_seen)

    @property
    def mean_oracle_fraction(self) -> float:
        """The oracle lower bound (e.g. the 59.4% "determined by hand")."""
        return _mean(self.oracle_fractions)

    @property
    def eager_rate(self) -> float:
        """Fraction of gestures classified before the stroke ended."""
        return self.eager_count / self.total if self.total else 0.0


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
