"""Elastic cluster benchmark: resharding economy and live-migration cost.

The elastic subsystem's claims, measured:

* **bounded key movement** — stepping a weighted-vnode ring from 2 to 4
  shards moves no more than 1.25x the theoretical minimum number of
  sessions (the fair share the new shards must take; a naive
  ``hash(key) % n`` reshuffle would move about half of *all* keys);
* **migration latency** — the p99 of ``cluster.migration_seconds``
  (journal replay + re-route per session, measured inside the router)
  during a live scale-out at 256 open sessions stays under
  ``P99_BOUND_S``;
* **zero drops** — every one of the 256 mid-stroke sessions survives
  the scale-out and finishes byte-identical to a single
  :class:`~repro.serve.SessionPool`; nothing is evicted, nothing is
  lost.

Results go to ``BENCH_elastic.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import write_bench_json, write_report

from repro.cluster import (
    Cluster,
    HashRing,
    drive_cluster,
    quantile_from_buckets,
    reference_lines,
)
from repro.eager import train_eager_recognizer
from repro.interaction import DEFAULT_TIMEOUT
from repro.synth import GestureGenerator, gdp_templates

SESSIONS = 256
EXAMPLES = 12
SEED = 9
DT = 0.1
WORKERS_BEFORE = 2
WORKERS_AFTER = 4
# Migration is a synchronous journal replay into an already-connected
# link — enqueue work, no awaits — so even on a loaded 1-CPU host a
# single session's move should land well under this.
P99_BOUND_S = 0.025
MOVE_RATIO_BOUND = 1.25
# Median of REPEATS live runs; see bench_cluster.py for the rationale.
REPEATS = 3


def _session_keys():
    # drive_cluster is the router's first client, so keys are "k1:...".
    return [f"k1:g{i}" for i in range(SESSIONS)]


def _ticks():
    """256 strokes opened together, all mid-flight during the scale."""
    groups = []
    groups.append(
        (0.0, [("down", f"g{i}", 0.0, float(i % 7)) for i in range(SESSIONS)])
    )
    groups.append(
        (DT, [("move", f"g{i}", 15.0, float(i % 5)) for i in range(SESSIONS)])
    )
    groups.append(
        (2 * DT, [("up", f"g{i}", 30.0, 0.0) for i in range(SESSIONS)])
    )
    return groups


def test_elastic_numbers(tmp_path_factory):
    templates = gdp_templates()
    strokes = GestureGenerator(templates, seed=SEED).generate_strokes(EXAMPLES)
    recognizer = train_eager_recognizer(strokes).recognizer
    path = tmp_path_factory.mktemp("bench_elastic") / "recognizer.json"
    recognizer.save(path)

    # -- resharding economy (deterministic, no fleet needed) ---------------
    keys = _session_keys()
    old_ring = HashRing([f"w{i}" for i in range(WORKERS_BEFORE)])
    new_ring = old_ring
    for i in range(WORKERS_BEFORE, WORKERS_AFTER):
        new_ring = new_ring.with_shard(f"w{i}")
    plan = old_ring.plan_rebalance(new_ring, keys)
    keys_moved = len(plan)
    # The minimum: the new shards' fair share of the keyspace.  Anything
    # that stays under MOVE_RATIO_BOUND x of it is "only what must move".
    min_moves = SESSIONS * (WORKERS_AFTER - WORKERS_BEFORE) / WORKERS_AFTER
    move_ratio = keys_moved / min_moves
    # Every planned move targets a *new* shard — old keys never shuffle
    # among the survivors, which is the consistent-hashing contract.
    assert all(
        dst in {f"w{i}" for i in range(WORKERS_BEFORE, WORKERS_AFTER)}
        for _, dst in plan.values()
    )

    # -- live scale-out under 256 open sessions ----------------------------
    ticks = _ticks()
    end_t = 3 * DT + DEFAULT_TIMEOUT + DT
    reference = reference_lines(
        recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )

    async def run():
        async with Cluster(
            path,
            workers=WORKERS_BEFORE,
            timeout=DEFAULT_TIMEOUT,
            min_workers=1,
            max_workers=WORKERS_AFTER,
        ) as cluster:
            await cluster.wait_all_up()
            host, port = cluster.address
            scale_s = {}

            async def before_tick(i, t):
                if i != 1:
                    return
                # All 256 sessions are open and mid-stroke: scale out
                # and block until both joins (and their migrations)
                # have landed.
                reader, writer = await asyncio.open_connection(host, port)
                start = time.perf_counter()
                writer.write(b'{"op": "scale", "workers": 4}\n')
                await writer.drain()
                reply = json.loads(
                    await asyncio.wait_for(reader.readline(), 30)
                )
                assert reply["status"] == "started", reply
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 60
                # The link count reaches 4 before the final join's
                # rebalance runs; the scale lock is held until every
                # join *and* its migrations have been applied.
                while (
                    len(cluster.router.links) < WORKERS_AFTER
                    or cluster._scale_lock.locked()
                ):
                    assert loop.time() < deadline
                    await asyncio.sleep(0.01)
                await cluster.wait_all_up()
                scale_s["elapsed"] = time.perf_counter() - start
                writer.close()
                await writer.wait_closed()

            start = time.perf_counter()
            replies, stats = await drive_cluster(
                host, port, ticks, end_t=end_t, before_tick=before_tick
            )
            elapsed = time.perf_counter() - start
            snapshot = cluster.metrics.snapshot()
            return replies, stats, snapshot, scale_s["elapsed"], elapsed

    runs = []
    for _ in range(REPEATS):
        replies, stats, snapshot, scale_out_s, elapsed = asyncio.run(run())
        assert replies == reference, "scale-out broke byte-identity"
        assert stats["cluster"]["sessions"] == 0  # all terminal, none lost
        runs.append((elapsed, (stats, snapshot, scale_out_s)))
    _, (stats, snapshot, scale_out_s) = sorted(runs, key=lambda r: r[0])[
        len(runs) // 2
    ]

    migrations = snapshot["counters"]["cluster.migrations"]
    hist = snapshot["histograms"]["cluster.migration_seconds"]
    p99_s = quantile_from_buckets(hist["buckets"], q=0.99)
    dropped = len(set(reference) - set(replies))

    write_report(
        "elastic",
        f"Elastic scale-out ({SESSIONS} sessions, "
        f"{WORKERS_BEFORE} -> {WORKERS_AFTER} workers)\n"
        f"keys moved: {keys_moved} "
        f"(minimum {min_moves:.0f}, ratio {move_ratio:.2f}x)\n"
        f"live migrations: {migrations}, p99 {p99_s * 1000:.2f} ms "
        f"(bound {P99_BOUND_S * 1000:.0f} ms)\n"
        f"scale-out wall time: {scale_out_s * 1000:.0f} ms\n"
        f"dropped strokes: {dropped}\n"
        "replies byte-identical to the single pool across the scale cycle",
    )
    write_bench_json(
        "elastic",
        params={
            "sessions": SESSIONS,
            "workers_before": WORKERS_BEFORE,
            "workers_after": WORKERS_AFTER,
            "ring_replicas": old_ring.replicas,
            "seed": SEED,
            "move_ratio_bound": MOVE_RATIO_BOUND,
            "p99_bound_s": P99_BOUND_S,
        },
        results={
            "keys_moved": keys_moved,
            "min_moves": round(min_moves, 1),
            "move_ratio": round(move_ratio, 3),
            "migrations": migrations,
            "migration_p99_s": round(p99_s, 6),
            "scale_out_s": round(scale_out_s, 4),
            "dropped_strokes": dropped,
            "byte_identical": True,
        },
    )
    assert move_ratio <= MOVE_RATIO_BOUND, (
        f"moved {keys_moved} keys for a fair share of {min_moves:.0f} "
        f"= {move_ratio:.2f}x, expected <= {MOVE_RATIO_BOUND}x"
    )
    assert p99_s <= P99_BOUND_S, (
        f"migration p99 {p99_s:.4f}s over the {P99_BOUND_S}s bound"
    )
    assert dropped == 0
