"""Figures 5–7 — the U/D labelling walk-through.

Three figures show the eager trainer's intermediate states on two toy
classes (U = right-then-up, D = right-then-down):

* Figure 5: complete/incomplete labels straight from the full
  classifier.  Along D's horizontal run some subgestures are
  *accidentally complete* — classified D even though still ambiguous.
* Figure 6: after the accidental-complete move, every subgesture along
  the shared horizontal prefix is incomplete.
* Figure 7: the final (biased, tweaked) AUC classifies conservatively —
  "never indicating that a subgesture is unambiguous when it is not".

The reproduction prints each training example as one character per
subgesture (uppercase = complete / judged-unambiguous) for each stage.
"""

import pytest
from conftest import write_report

from repro.eager import (
    is_complete_set,
    label_examples,
    train_eager_recognizer,
)
from repro.recognizer import GestureClassifier
from repro.synth import GenerationParams, GestureGenerator, ud_templates

EXAMPLES_PER_CLASS = 15


@pytest.fixture(scope="module")
def ud_setup():
    params = GenerationParams(rotation_sigma=0.04, jitter=0.8)
    generator = GestureGenerator(ud_templates(), params=params, seed=71)
    train = generator.generate_strokes(EXAMPLES_PER_CLASS)
    full = GestureClassifier.train(train)
    # Figure 5 state: labels before any moving.
    fig5_labels = label_examples(full, train)
    # Figures 6–7 state: the full training pipeline (mutates labels).
    report = train_eager_recognizer(train, full_classifier=full)
    return train, full, fig5_labels, report


def _diagram(labelled, max_per_class=5):
    lines = []
    shown = {}
    for example in labelled:
        count = shown.get(example.true_class, 0)
        if count >= max_per_class:
            continue
        shown[example.true_class] = count + 1
        lines.append(f"  {example.true_class}: {example.label_string()}")
    return "\n".join(lines)


def _auc_diagram(report, max_per_class=5):
    """Figure 7: the final AUC's verdict on each training subgesture."""
    auc = report.recognizer.auc
    lines = []
    shown = {}
    for example in report.labelled:
        count = shown.get(example.true_class, 0)
        if count >= max_per_class:
            continue
        shown[example.true_class] = count + 1
        verdict = "".join(
            example.true_class.upper()[0]
            if auc.is_unambiguous(sub.features)
            else example.true_class.lower()[0]
            for sub in example.subgestures
        )
        lines.append(f"  {example.true_class}: {verdict}")
    return "\n".join(lines)


def test_fig5_accidentally_complete_exist(ud_setup):
    train, full, fig5_labels, report = ud_setup
    # Figure 5's phenomenon: some subgestures are complete yet ambiguous
    # — they sit on the shared horizontal prefix.  Detectable as complete
    # subgestures whose length is well before the corner.
    accidental_candidates = 0
    for example in fig5_labels:
        n = len(example.subgestures)
        for idx, sub in enumerate(example.subgestures):
            if sub.complete and idx < n // 3:
                accidental_candidates += 1
    assert accidental_candidates > 0


def test_fig6_moves_clean_the_prefix(ud_setup):
    train, full, fig5_labels, report = ud_setup
    assert report.moved_count > 0
    # After the move, no complete subgesture remains in the first third
    # of any example (the genuinely ambiguous shared prefix).
    complete_lengths = {}
    for name, subs in report.partition.sets.items():
        if is_complete_set(name):
            for sub in subs:
                complete_lengths.setdefault(sub.example_id, []).append(
                    sub.length
                )
    for example in report.labelled:
        n = example.subgestures[-1].length
        for length in complete_lengths.get(example.example_id, []):
            assert length > n // 3


def test_fig7_auc_is_conservative(ud_setup):
    train, full, fig5_labels, report = ud_setup
    auc = report.recognizer.auc
    # "never indicating that a subgesture is unambiguous when it is not":
    # no subgesture the partition holds as incomplete is judged
    # unambiguous by the final AUC.
    for name, subs in report.partition.sets.items():
        if is_complete_set(name):
            continue
        for sub in subs:
            assert not auc.is_unambiguous(sub.features)


def test_fig5_7_report(ud_setup):
    train, full, fig5_labels, report = ud_setup
    content = "\n".join(
        [
            "Figures 5-7 reproduction: U/D subgesture labelling",
            "(one character per subgesture; uppercase = complete /",
            " judged unambiguous, lowercase = incomplete / ambiguous;",
            " the letter is the full classifier's verdict for the prefix)",
            "",
            "Figure 5 — complete/incomplete straight from the full classifier:",
            _diagram(fig5_labels),
            "",
            "Figure 6 — after moving accidentally complete subgestures",
            f"({report.moved_count} subgestures moved,"
            f" threshold {report.move_threshold:.2f}):",
            _diagram(report.labelled),
            "",
            "Figure 7 — the final AUC's (conservative) verdicts:",
            _auc_diagram(report),
        ]
    )
    write_report("fig5_7_ud_labeling", content)


def test_fig5_7_pipeline_time(benchmark):
    params = GenerationParams(rotation_sigma=0.04, jitter=0.8)
    generator = GestureGenerator(ud_templates(), params=params, seed=72)
    train = generator.generate_strokes(EXAMPLES_PER_CLASS)
    benchmark(lambda: train_eager_recognizer(train))
