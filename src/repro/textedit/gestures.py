"""Gesture classes for the text editor — including the tailed move gesture.

§6's closing insight: the move-text gesture is a circle plus a *tail*
pointing at the destination, and "the size and shape of this tail will
vary greatly with each instance ... this variation makes the gesture
difficult to recognize in general".  In a two-phase interaction "the
tail is no longer part of the gesture, but instead part of the
manipulation", so "trainable recognition techniques will be much more
successful on the remaining prefix."

To measure that claim we need gestures whose tails genuinely vary:
:class:`TailedGestureGenerator` wraps the base generator and appends a
random-direction, random-length tail to designated classes, recording
the prefix boundary as ground truth.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import Point, Stroke
from ..synth import (
    GeneratedGesture,
    GenerationParams,
    GestureGenerator,
    GestureTemplate,
    arc_waypoints,
)

__all__ = [
    "editing_templates",
    "extended_editing_templates",
    "TailedGestureGenerator",
]


def editing_templates() -> dict[str, GestureTemplate]:
    """Three proofreader-style classes: move (circle), delete (strike),
    insert (caret)."""
    circle = arc_waypoints(
        cx=0.35, cy=0.35, radius=0.35, start_angle=-math.pi / 2,
        sweep=2 * math.pi * 0.9, steps=22,
    )
    move = GestureTemplate(name="move-text", waypoints=tuple(circle))
    delete = GestureTemplate(  # a strike-through with a hook back
        name="delete-text",
        waypoints=((0.0, 0.3), (0.9, 0.3), (0.7, 0.15)),
        corner_indices=(1,),
    )
    insert = GestureTemplate(  # the caret
        name="insert-text",
        waypoints=((0.0, 0.5), (0.3, 0.0), (0.6, 0.5)),
        corner_indices=(1,),
    )
    return {t.name: t for t in (move, delete, insert)}


def extended_editing_templates() -> dict[str, GestureTemplate]:
    """The editing set plus circle-with-fixed-stem classes.

    These exist to measure §6's claim.  ``paragraph-mark`` (circle + a
    fixed downward stem, pilcrow-style) and ``footnote-mark`` (circle +
    a fixed up-right stem) have the same *shape family* as a move-text
    gesture whose random tail happens to point their way — exactly the
    collision that makes the tailed move gesture "difficult to recognize
    in general" and that disappears when the tail becomes manipulation.
    """
    templates = editing_templates()
    circle = arc_waypoints(
        cx=0.35, cy=0.35, radius=0.35, start_angle=-math.pi / 2,
        sweep=2 * math.pi * 0.9, steps=22,
    )
    end = circle[-1]
    templates["paragraph-mark"] = GestureTemplate(
        name="paragraph-mark",
        waypoints=tuple(circle + [(end[0], end[1] + 0.9)]),
    )
    templates["footnote-mark"] = GestureTemplate(
        name="footnote-mark",
        waypoints=tuple(circle + [(end[0] + 0.65, end[1] - 0.65)]),
    )
    return templates


class TailedGestureGenerator:
    """Wraps a :class:`GestureGenerator`, appending variable tails.

    A tail is a straight run from the base gesture's end toward a random
    direction, with length drawn between 0.5x and 3x the base gesture's
    size — "vary greatly with each instance".  The returned
    :class:`GeneratedGesture` marks the prefix boundary in
    ``corner_sample_indices`` so experiments can strip the tail.
    """

    def __init__(
        self,
        templates: dict[str, GestureTemplate],
        tailed_classes: tuple[str, ...] = ("move-text",),
        params: GenerationParams | None = None,
        seed: int = 0,
    ):
        self._base = GestureGenerator(templates, params=params, seed=seed)
        self._rng = np.random.default_rng(seed + 1)
        self.tailed_classes = tailed_classes

    @property
    def class_names(self) -> list[str]:
        return self._base.class_names

    def generate(self, class_name: str) -> GeneratedGesture:
        base = self._base.generate(class_name)
        if class_name not in self.tailed_classes:
            return base
        stroke = base.stroke
        size = max(stroke.bounding_box().diagonal, 1.0)
        angle = self._rng.uniform(0.0, 2 * math.pi)
        length = size * self._rng.uniform(0.5, 3.0)
        spacing = self._base.params.spacing
        dt = self._base.params.dt
        steps = max(int(length / spacing), 2)
        end = stroke.end
        tail = [
            Point(
                end.x + math.cos(angle) * length * k / steps
                + self._rng.normal(0.0, self._base.params.jitter),
                end.y + math.sin(angle) * length * k / steps
                + self._rng.normal(0.0, self._base.params.jitter),
                end.t + dt * k,
            )
            for k in range(1, steps + 1)
        ]
        prefix_end = len(stroke) - 1
        return GeneratedGesture(
            stroke=Stroke(list(stroke) + tail),
            class_name=class_name,
            corner_sample_indices=(prefix_end,),
        )

    def generate_strokes(
        self, count_per_class: int, strip_tails: bool = False
    ) -> dict[str, list[Stroke]]:
        """Training-shaped batches; ``strip_tails`` keeps only prefixes.

        ``strip_tails=True`` models the two-phase interaction, where
        everything after recognition belongs to the manipulation phase.
        """
        out: dict[str, list[Stroke]] = {}
        for name in self.class_names:
            strokes = []
            for _ in range(count_per_class):
                example = self.generate(name)
                stroke = example.stroke
                if strip_tails and example.corner_sample_indices:
                    stroke = stroke.subgesture(
                        example.corner_sample_indices[0] + 1
                    )
                strokes.append(stroke)
            out[name] = strokes
        return out
