"""Eager recognition: classify a gesture as soon as it is unambiguous."""

from .auc import AMBIGUITY_BIAS_RATIO, AmbiguityClassifier
from .partition import (
    ExampleLabelling,
    LabelledSubgesture,
    SubgesturePartition,
    class_of_set,
    complete_set_name,
    compute_move_threshold,
    incomplete_set_name,
    is_complete_set,
    label_example,
    label_examples,
    move_accidentally_complete,
    partition_subgestures,
)
from .recognizer import EagerRecognizer, EagerResult, EagerSession
from .subgestures import (
    MIN_PREFIX_POINTS,
    SubgestureFeatures,
    prefix_feature_vectors,
)
from .trainer import (
    AucBuildStats,
    EagerTrainingConfig,
    EagerTrainingReport,
    build_auc,
    train_eager_recognizer,
)

__all__ = [
    "AMBIGUITY_BIAS_RATIO",
    "MIN_PREFIX_POINTS",
    "AmbiguityClassifier",
    "AucBuildStats",
    "EagerRecognizer",
    "EagerResult",
    "EagerSession",
    "EagerTrainingConfig",
    "EagerTrainingReport",
    "ExampleLabelling",
    "LabelledSubgesture",
    "SubgestureFeatures",
    "SubgesturePartition",
    "build_auc",
    "class_of_set",
    "complete_set_name",
    "compute_move_threshold",
    "incomplete_set_name",
    "is_complete_set",
    "label_example",
    "label_examples",
    "move_accidentally_complete",
    "partition_subgestures",
    "prefix_feature_vectors",
    "train_eager_recognizer",
]
