"""§5 timing — the fixed per-mouse-point cost of eager recognition.

"Computationally, eager recognition is quite tractable on modest
hardware.  A fixed amount of computation needs to occur on each mouse
point: first the feature vector must be updated (taking 0.5 msec on a
DEC MicroVAX II), and then the vector must be classified by the AUC
(taking 0.27 msec per class, or 6 msec in the case of GDP)."

The reproduction measures the same two quantities on this machine —
per-point feature update, and AUC evaluation for the GDP-sized (2C = 22
class) problem — and checks they stay within an interactive budget by a
wide margin (we are not matching MicroVAX numbers, just the claim that
the cost is fixed and small).
"""

from conftest import write_report

from repro.features import IncrementalFeatures
from repro.geometry import Point


def test_feature_update_per_point(benchmark):
    """Paper: 0.5 ms per point on a MicroVAX II."""
    inc = IncrementalFeatures()
    points = [Point(float(i), float(i % 17), i * 0.01) for i in range(1000)]

    def update_thousand_points():
        inc.reset()
        for p in points:
            inc.add_point(p)
        return inc.vector

    vector = benchmark(update_thousand_points)
    assert vector.shape == (13,)
    if benchmark.stats is None:  # --benchmark-disable run
        return
    per_point_us = benchmark.stats.stats.mean / len(points) * 1e6
    write_report(
        "timing_feature_update",
        "Per-mouse-point feature update\n"
        f"paper (MicroVAX II): 500 us\n"
        f"this machine:        {per_point_us:.2f} us",
    )
    # Far under the 10 ms inter-sample budget of a 100 Hz mouse.
    assert per_point_us < 1000


def test_auc_evaluation_per_point(fig10_experiment, benchmark):
    """Paper: 0.27 ms per class, 6 ms total for GDP's 22 AUC classes."""
    report, result, test_set = fig10_experiment
    auc = report.recognizer.auc
    inc = IncrementalFeatures()
    for i in range(30):
        inc.add_point(Point(float(i * 3), float(i % 5), i * 0.01))
    features = inc.vector

    decision = benchmark(lambda: auc.is_unambiguous(features))
    assert isinstance(decision, bool)
    if benchmark.stats is None:  # --benchmark-disable run
        return
    total_us = benchmark.stats.stats.mean * 1e6
    num_classes = auc.linear.num_classes
    write_report(
        "timing_auc_evaluation",
        "AUC evaluation per mouse point\n"
        f"paper (MicroVAX II): 270 us/class x {num_classes} classes "
        "= ~6 ms for GDP\n"
        f"this machine:        {total_us:.1f} us total "
        f"({total_us / num_classes:.2f} us/class)",
    )
    assert total_us < 10_000  # comfortably interactive


def test_end_to_end_per_point_cost(fig10_experiment, benchmark):
    """Feature update + AUC check + (on decision) full classification."""
    report, result, test_set = fig10_experiment
    strokes = [example.stroke for example in test_set][:20]

    def one_pass():
        total_points = 0
        for stroke in strokes:
            session = report.recognizer.session()
            for p in stroke:
                total_points += 1
                if session.add_point(p) is not None:
                    break
            else:
                session.finish()
        return total_points

    points = benchmark(one_pass)
    if benchmark.stats is None:  # --benchmark-disable run
        return
    per_point_us = benchmark.stats.stats.mean / points * 1e6
    write_report(
        "timing_end_to_end",
        "Full eager-recognition cost per mouse point (GDP recognizer)\n"
        f"this machine: {per_point_us:.1f} us/point "
        f"({points} points per pass)",
    )
    assert per_point_us < 10_000
