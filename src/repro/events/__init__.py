"""Synthetic input events, virtual time, and the event loop."""

from .clock import InstrumentedClock, VirtualClock
from .event import EventKind, MouseButton, MouseEvent, TimerEvent
from .player import perform_gesture, stroke_events
from .queue import EventQueue

__all__ = [
    "EventKind",
    "EventQueue",
    "InstrumentedClock",
    "MouseButton",
    "MouseEvent",
    "TimerEvent",
    "VirtualClock",
    "perform_gesture",
    "stroke_events",
]
