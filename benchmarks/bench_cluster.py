"""Cluster benchmark: scaling, profiled breakdown, crash recovery,
and the invariance check.

The sharded service's claims, measured:

* **byte-identity** — the per-stroke reply lines of the 1/2/4-worker
  cluster are string-equal to both a single :class:`GestureServer` and
  the in-process reference pool, for the identical tick cadence;
* **throughput** — ops/sec through the router at 1, 2 and 4 workers
  against the single-process TCP baseline (the identical worker
  subprocess, driven directly with no router in front), with a profiled
  router/worker/transport breakdown per worker count (``router_s`` is
  the router's data-plane busy time, ``worker_s`` the fleet's summed
  pump busy time, ``transport_s`` the remainder: syscalls, framing,
  scheduling).  Per-stage µs/op make regressions attributable to a
  stage, not just visible in the total.

  Two floors are asserted: the 1-worker cluster must stay within 0.85x
  of the single-process baseline *on any host* (the router's fast
  paths — splice rewriting, memoized routing, coalesced lp1 writes —
  exist to make the extra hop nearly free), and 4 workers must reach
  >= 2x on hosts with at least 4 CPUs (skipped below that: a 1-core
  container cannot demonstrate parallelism; the measured numbers and
  the CPU count are published regardless, so they are honest either
  way);
* **crash recovery** — wall time from SIGKILLing a worker to the
  supervisor's replacement being respawned, reconnected, and replayed.

Results go to ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest
from conftest import write_bench_json, write_report

from repro.cluster import Cluster, drive_cluster, reference_lines, workload_ticks
from repro.cluster.worker import worker_command, worker_env
from repro.eager import train_eager_recognizer
from repro.interaction import DEFAULT_TIMEOUT
from repro.serve import generate_workload
from repro.synth import GestureGenerator, gdp_templates

CLIENTS = 96
GESTURES_PER_CLIENT = 2
EXAMPLES = 12
SEED = 9
DT = 0.01
WORKER_COUNTS = (1, 2, 4)
# One drive lasts about a hundred milliseconds, and the host's
# throughput wobbles ±10% run to run — far too noisy for a single
# sample.  Every configuration is driven REPEATS times against a fresh
# server/cluster (clocks only move forward, so a run cannot be
# replayed into a used fleet) and the *median* run is reported: a
# min-of-N would compare two distributions by their lucky tails, while
# the median is a robust estimator of what each configuration actually
# sustains.
REPEATS = 5


def _median_run(runs):
    """The (elapsed, stats) sample with the median elapsed time."""
    return sorted(runs, key=lambda r: r[0])[len(runs) // 2]


@pytest.fixture(scope="module")
def cluster_bench(tmp_path_factory):
    templates = gdp_templates()
    strokes = GestureGenerator(templates, seed=SEED).generate_strokes(EXAMPLES)
    recognizer = train_eager_recognizer(strokes).recognizer
    path = tmp_path_factory.mktemp("bench_cluster") / "recognizer.json"
    recognizer.save(path)
    workload = generate_workload(
        templates,
        clients=CLIENTS,
        gestures_per_client=GESTURES_PER_CLIENT,
        seed=SEED + 1,
    )
    ticks = workload_ticks(workload, dt=DT)
    end_t = len(ticks) * DT + DEFAULT_TIMEOUT + DT
    return recognizer, str(path), ticks, end_t


async def _timed_drive(host: str, port: int, ticks, end_t: float):
    start = time.perf_counter()
    replies, stats = await drive_cluster(host, port, ticks, end_t=end_t)
    return replies, stats, time.perf_counter() - start


def _breakdown(total_s: float, router_s: float, worker_s: float, ops: int):
    """One stage-attributed timing dict; transport is the remainder."""
    transport_s = max(0.0, total_s - router_s - worker_s)
    scale = 1e6 / ops if ops else 0.0
    return {
        "total_s": round(total_s, 4),
        "router_s": round(router_s, 4),
        "worker_s": round(worker_s, 4),
        "transport_s": round(transport_s, 4),
        "router_us_per_op": round(router_s * scale, 2),
        "worker_us_per_op": round(worker_s * scale, 2),
        "transport_us_per_op": round(transport_s * scale, 2),
    }


def test_cluster_numbers(cluster_bench):
    recognizer, path, ticks, end_t = cluster_bench
    reference = reference_lines(
        recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    points = sum(len(group) for _, group in ticks)

    # Single-process TCP baseline: the *identical* worker subprocess
    # the cluster runs — same argv, same observer, same framing
    # support — driven directly with no router in between.  Measuring
    # the proxy means inserting it in front of the same backend:
    # driving an in-process loopback server instead would credit the
    # baseline with zero context switches and book the client/server
    # process separation (which every deployment pays) as router
    # overhead.  Its "worker" time is the server's own pump busy time;
    # there is no router stage.
    async def baseline():
        proc = await asyncio.create_subprocess_exec(
            *worker_command(path, "baseline", timeout=DEFAULT_TIMEOUT),
            env=worker_env(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
        )
        try:
            ready = json.loads(await proc.stdout.readline())
            assert ready.get("event") == "ready", ready
            return await _timed_drive(
                ready["host"], ready["port"], ticks, end_t
            )
        finally:
            proc.terminate()
            await proc.wait()

    runs = []
    for _ in range(REPEATS):
        replies, stats, elapsed = asyncio.run(baseline())
        assert replies == reference
        runs.append((elapsed, stats))
    baseline_s, stats = _median_run(runs)
    baseline_breakdown = _breakdown(
        baseline_s, 0.0, stats.get("busy_s", 0.0), points
    )

    cluster_s: dict = {}
    breakdowns: dict = {}
    for n in WORKER_COUNTS:

        async def run(workers=n):
            async with Cluster(
                path, workers=workers, timeout=DEFAULT_TIMEOUT
            ) as cluster:
                await cluster.wait_all_up()
                host, port = cluster.address
                return await _timed_drive(host, port, ticks, end_t)

        runs = []
        for _ in range(REPEATS):
            replies, stats, elapsed = asyncio.run(run())
            assert replies == reference, (
                f"{n}-worker replies not byte-identical"
            )
            runs.append((elapsed, stats))
        cluster_s[n], stats = _median_run(runs)
        fleet = stats.get("cluster", {})
        breakdowns[n] = _breakdown(
            cluster_s[n],
            fleet.get("router", {}).get("busy_s", 0.0),
            fleet.get("worker_busy_s", 0.0),
            points,
        )

    # Crash recovery: SIGKILL one of two workers, time until the
    # replacement is respawned, reconnected, and its replay enqueued.
    async def recovery():
        async with Cluster(path, workers=2, timeout=DEFAULT_TIMEOUT) as cluster:
            await cluster.wait_all_up()
            ups = cluster.router.links["w0"].ups
            start = time.perf_counter()
            assert cluster.kill("w0") is not None
            await cluster.wait_recovered("w0", ups)
            return time.perf_counter() - start

    recovery_s = asyncio.run(recovery())

    cpus = os.cpu_count() or 1
    baseline_pps = points / baseline_s if baseline_s else 0.0
    pps = {n: points / s if s else 0.0 for n, s in cluster_s.items()}
    speedup_1 = pps[1] / baseline_pps if baseline_pps else 0.0
    speedup_4 = pps[4] / baseline_pps if baseline_pps else 0.0

    def fmt(n):
        b = breakdowns[n]
        return (
            f"{n} worker(s): {pps[n]:,.0f} ops/s "
            f"({pps[n] / baseline_pps:.2f}x) "
            f"[router {b['router_us_per_op']:.0f} / worker "
            f"{b['worker_us_per_op']:.0f} / transport "
            f"{b['transport_us_per_op']:.0f} us/op]\n"
        )

    write_report(
        "cluster",
        f"Sharded cluster ({CLIENTS} clients, {points} ops, {cpus} cpus)\n"
        f"baseline (1 process): {baseline_pps:,.0f} ops/s "
        f"[worker {baseline_breakdown['worker_us_per_op']:.0f} / transport "
        f"{baseline_breakdown['transport_us_per_op']:.0f} us/op]\n"
        + "".join(fmt(n) for n in WORKER_COUNTS)
        + f"crash recovery: {recovery_s * 1000:.0f} ms\n"
        "replies byte-identical to the single pool at every worker count",
    )
    write_bench_json(
        "cluster",
        params={
            "clients": CLIENTS,
            "gestures_per_client": GESTURES_PER_CLIENT,
            "examples_per_class": EXAMPLES,
            "seed": SEED,
            "ops": points,
            "worker_counts": list(WORKER_COUNTS),
            "cpus": cpus,
        },
        results={
            "baseline_ops_per_sec": round(baseline_pps, 1),
            "baseline_breakdown": baseline_breakdown,
            "cluster_ops_per_sec": {
                str(n): round(pps[n], 1) for n in WORKER_COUNTS
            },
            "cluster_breakdown": {
                str(n): breakdowns[n] for n in WORKER_COUNTS
            },
            "speedup_1_worker": round(speedup_1, 3),
            "speedup_4_workers": round(speedup_4, 3),
            "crash_recovery_s": round(recovery_s, 4),
            "byte_identical": True,
        },
    )
    # The router-overhead floor holds on any host: one worker through
    # the router must stay within 0.85x of the no-router baseline.
    assert speedup_1 >= 0.85, (
        f"1 worker reached {pps[1]:,.0f} ops/s vs baseline "
        f"{baseline_pps:,.0f} = {speedup_1:.2f}x, expected >= 0.85x"
    )
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s): byte-identity and the 1-worker floor "
            "asserted above, but a parallel speedup cannot be "
            "demonstrated on this machine"
        )
    assert speedup_4 >= 2.0, (
        f"4 workers reached {pps[4]:,.0f} ops/s vs baseline "
        f"{baseline_pps:,.0f} = {speedup_4:.2f}x, expected >= 2.0x"
    )
