"""Unit tests for the dispatcher: handler querying, propagation, grabs."""

from repro.events import EventKind, EventQueue, MouseButton, MouseEvent
from repro.geometry import BoundingBox
from repro.mvc import Dispatcher, EventHandler, EventPredicate, View


def press(x=5.0, y=5.0, t=0.0, button=MouseButton.LEFT):
    return MouseEvent(EventKind.PRESS, x, y, t, button)


def move(x, y, t):
    return MouseEvent(EventKind.MOVE, x, y, t)


def release(x, y, t):
    return MouseEvent(EventKind.RELEASE, x, y, t)


class BoxView(View):
    def __init__(self, x1, y1, x2, y2):
        super().__init__()
        self._box = BoundingBox(x1, y1, x2, y2)

    def bounds(self):
        return self._box


class RecordingHandler(EventHandler):
    def __init__(self, accept=True, predicate=None):
        super().__init__(predicate)
        self.accept = accept
        self.begins = []
        self.updates = []
        self.ends = []

    def begin(self, event, view, context):
        self.begins.append((event, view))
        return self.accept

    def update(self, event, context):
        self.updates.append(event)

    def end(self, event, context):
        self.ends.append(event)


class TestDispatch:
    def test_press_goes_to_picked_views_handler(self):
        root = BoxView(0, 0, 100, 100)
        handler = RecordingHandler()
        root.add_handler(handler)
        dispatcher = Dispatcher(root)
        assert dispatcher.dispatch(press())
        assert len(handler.begins) == 1
        assert handler.begins[0][1] is root

    def test_press_outside_every_view_is_unhandled(self):
        dispatcher = Dispatcher(BoxView(0, 0, 10, 10))
        assert not dispatcher.dispatch(press(50, 50))

    def test_stray_move_without_interaction_ignored(self):
        root = BoxView(0, 0, 100, 100)
        handler = RecordingHandler()
        root.add_handler(handler)
        dispatcher = Dispatcher(root)
        assert not dispatcher.dispatch(move(5, 5, 0.0))
        assert handler.updates == []

    def test_handlers_queried_in_order_until_accept(self):
        root = BoxView(0, 0, 100, 100)
        refusing = RecordingHandler(accept=False)
        accepting = RecordingHandler(accept=True)
        root.add_handler(refusing)
        root.add_handler(accepting)
        Dispatcher(root).dispatch(press())
        assert len(refusing.begins) == 1  # offered, declined
        assert len(accepting.begins) == 1  # then accepted

    def test_predicate_filters_before_begin(self):
        root = BoxView(0, 0, 100, 100)
        right_only = RecordingHandler(
            predicate=EventPredicate.for_button(MouseButton.RIGHT)
        )
        fallback = RecordingHandler()
        root.add_handler(right_only)
        root.add_handler(fallback)
        Dispatcher(root).dispatch(press(button=MouseButton.LEFT))
        assert right_only.begins == []
        assert len(fallback.begins) == 1

    def test_per_button_handlers_coexist(self):
        # §3.1: gesture on one button, direct manipulation on another.
        root = BoxView(0, 0, 100, 100)
        left = RecordingHandler(
            predicate=EventPredicate.for_button(MouseButton.LEFT)
        )
        right = RecordingHandler(
            predicate=EventPredicate.for_button(MouseButton.RIGHT)
        )
        root.add_handler(left)
        root.add_handler(right)
        dispatcher = Dispatcher(root)
        dispatcher.dispatch(press(button=MouseButton.RIGHT))
        dispatcher.dispatch(release(5, 5, 0.1))
        dispatcher.dispatch(press(button=MouseButton.LEFT))
        assert len(right.begins) == 1
        assert len(left.begins) == 1


class TestPropagation:
    def test_unclaimed_input_propagates_to_parent(self):
        # "any input ignored by one handler is propagated to the next"
        # — and past the view entirely, up the tree.
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(0, 0, 50, 50)
        parent.add_child(child)
        child_handler = RecordingHandler(accept=False)
        parent_handler = RecordingHandler(accept=True)
        child.add_handler(child_handler)
        parent.add_handler(parent_handler)
        Dispatcher(parent).dispatch(press(10, 10))
        assert len(child_handler.begins) == 1
        assert len(parent_handler.begins) == 1
        assert parent_handler.begins[0][1] is parent

    def test_handlerless_child_propagates(self):
        parent = BoxView(0, 0, 100, 100)
        child = BoxView(0, 0, 50, 50)  # no handlers (like a ShapeView)
        parent.add_child(child)
        handler = RecordingHandler()
        parent.add_handler(handler)
        assert Dispatcher(parent).dispatch(press(10, 10))
        assert len(handler.begins) == 1


class TestGrabSemantics:
    def test_accepting_handler_receives_rest_of_interaction(self):
        root = BoxView(0, 0, 100, 100)
        handler = RecordingHandler()
        root.add_handler(handler)
        dispatcher = Dispatcher(root)
        dispatcher.dispatch(press(5, 5, 0.0))
        dispatcher.dispatch(move(500, 500, 0.1))  # far outside the view
        dispatcher.dispatch(release(500, 500, 0.2))
        assert len(handler.updates) == 1
        assert len(handler.ends) == 1

    def test_interaction_active_flag(self):
        root = BoxView(0, 0, 100, 100)
        root.add_handler(RecordingHandler())
        dispatcher = Dispatcher(root)
        assert not dispatcher.interaction_active
        dispatcher.dispatch(press())
        assert dispatcher.interaction_active
        dispatcher.dispatch(release(5, 5, 0.1))
        assert not dispatcher.interaction_active

    def test_new_interaction_after_release(self):
        root = BoxView(0, 0, 100, 100)
        handler = RecordingHandler()
        root.add_handler(handler)
        dispatcher = Dispatcher(root)
        for t in (0.0, 1.0):
            dispatcher.dispatch(press(5, 5, t))
            dispatcher.dispatch(release(5, 5, t + 0.5))
        assert len(handler.begins) == 2
        assert len(handler.ends) == 2


class TestRunLoop:
    def test_run_drains_queue_through_dispatch(self):
        root = BoxView(0, 0, 100, 100)
        handler = RecordingHandler()
        root.add_handler(handler)
        queue = EventQueue()
        dispatcher = Dispatcher(root, queue)
        queue.post_all(
            [press(5, 5, 0.0), move(6, 6, 0.1), release(6, 6, 0.2)]
        )
        assert dispatcher.run() == 3
        assert len(handler.begins) == 1
        assert len(handler.updates) == 1
        assert len(handler.ends) == 1
