"""Differential fuzzing: cluster vs single pool, under randomized chaos.

Hypothesis drives randomized workloads — interleaved strokes, barriers,
mid-run sweeps, model swaps, worker crashes, graceful drains, elastic
joins and scale ops (live session migration), malformed lines, and
connection churn — through an in-process cluster (a real router in
front of real ``GestureServer`` workers, see
``tests/cluster/inproc.py``) and asserts the reply streams are
*byte-identical* to a scripted single-``SessionPool`` reference.  The
reference is fault-agnostic: crashes, drains, scales, and churn appear
nowhere in it (beyond their one-line admin acks), which **is** the
invariant.

The example budget follows the hypothesis profile: the ambient ``ci``
profile (registered in ``tests/conftest.py``) keeps the suite bounded
for tier-1 runs; ``pytest --hypothesis-profile=deep`` turns the fuzzer
loose for long soak runs.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import workload_ticks
from repro.serve import ModelRegistry, generate_workload
from repro.synth import gdp_templates

from .inproc import InProcessCluster, drive_script, reference_script
from .test_cluster import DT, assert_byte_identical, end_time

# Raw lines for the router's legacy/error paths: unparseable bytes, a
# non-object, an unknown op, a missing field, a late hello, a bad
# max_idle.  Expected replies are *derived* (inproc._non_op_reply), not
# hand-written, so these stay in lockstep with the protocol module.
BAD_LINES = (
    "not json",
    "[1, 2, 3]",
    '{"op": "zap"}',
    '{"op": "down", "stroke": "q", "x": 1, "y": 2}',
    '{"op": "hello", "framing": "lp1"}',
    '{"op": "sweep", "max_idle": -1}',
)


@pytest.fixture(scope="session")
def diff_registry(tmp_path_factory, cluster_recognizer, gdp_recognizer):
    """Two genuinely different published models, so a misapplied or
    lost swap changes decision bytes and fails the diff."""
    registry = ModelRegistry(tmp_path_factory.mktemp("diff-registry"))
    registry.publish("gdp", cluster_recognizer)
    registry.publish("alt", gdp_recognizer)
    return registry


@st.composite
def cluster_cases(draw):
    workers = draw(st.integers(min_value=2, max_value=3))
    clients = draw(st.integers(min_value=2, max_value=3))
    crash = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.1, max_value=0.9),
                st.integers(min_value=0, max_value=workers - 1),
            ),
        )
    )
    drain = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.2, max_value=0.8),
                st.integers(min_value=0, max_value=workers - 1),
            ),
        )
    )
    if crash is not None and drain is not None and crash[1] == drain[1]:
        # Crashing a shard mid-drain would "restart" a retired worker —
        # a scenario the supervisor never produces.
        drain = None
    join = draw(
        st.one_of(st.none(), st.floats(min_value=0.1, max_value=0.9))
    )
    scale = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.2, max_value=0.8),
                st.integers(min_value=1, max_value=workers + 2),
            ),
        )
    )
    if scale is not None:
        # The end-of-script wait needs an unambiguous fleet target, so
        # a scale op excludes the other topology events; and a
        # scale-down may retire exactly the shard a crash targets — a
        # "restart the retired" scenario the supervisor never produces.
        join = None
        if drain is not None or (scale[1] < workers and crash is not None):
            scale = None
    swap = draw(
        st.one_of(
            st.none(),
            st.tuples(
                st.floats(min_value=0.1, max_value=0.9),
                st.integers(min_value=0, max_value=clients - 1),
                st.sampled_from(["gdp", "alt"]),
            ),
        )
    )
    return {
        "workers": workers,
        "clients": clients,
        "gestures": draw(st.integers(min_value=1, max_value=2)),
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
        "framing": draw(st.sampled_from(["lp1", "ndjson"])),
        "mixed": draw(st.booleans()),
        "crash": crash,
        "drain": drain,
        "join": join,
        "scale": scale,
        "swap": swap,
        "bads": draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.0, max_value=1.0),
                    st.sampled_from(BAD_LINES),
                ),
                max_size=2,
            )
        ),
        "sweeps": draw(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.1, max_value=0.9),
                    st.sampled_from([1e9, 0.5, 0.05]),
                ),
                max_size=2,
            )
        ),
        "churn": draw(
            st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=1)
        ),
        "rawop_at": draw(
            st.one_of(st.none(), st.floats(min_value=0.1, max_value=0.8))
        ),
    }


def build_script(case, ticks, end_t):
    """Weave the case's chaos events into the workload's tick stream."""
    n = len(ticks)
    inject: dict[int, list] = {}

    def at(frac: float, event) -> None:
        inject.setdefault(min(int(frac * n), n - 1), []).append(event)

    for frac in case["churn"]:
        at(frac, ("churn",))
    for frac, line in case["bads"]:
        at(frac, ("raw", line))
    if case["rawop_at"] is not None:
        i = min(int(case["rawop_at"] * n), n - 1)
        t = ticks[i][0]
        # A *valid* op in non-canonical form (key order, separators):
        # must route through the legacy re-encode path and still match.
        at(
            case["rawop_at"],
            ("raw", '{"t": %r, "op": "down", "stroke": "zz", "x": 4.0, "y": 5.0}' % t),
        )
    for frac, max_idle in case["sweeps"]:
        at(frac, ("sweep", max_idle))
    if case["swap"] is not None:
        frac, ci, model = case["swap"]
        i = min(int(frac * n), n - 1)
        at(frac, ("swap", f"c{ci}", model, ticks[i][0]))
    if case["crash"] is not None:
        frac, wi = case["crash"]
        at(frac, ("crash", f"w{wi}"))
    if case["drain"] is not None:
        frac, wi = case["drain"]
        at(frac, ("drain", f"w{wi}"))
    if case["join"] is not None:
        at(case["join"], ("join",))
    if case["scale"] is not None:
        frac, target = case["scale"]
        at(frac, ("scale", target))

    script = []
    for i, (t, group) in enumerate(ticks):
        script.extend(inject.get(i, ()))
        script.append(("ops", t, group))
        script.append(("tick", t))
    script.append(("tick", end_t))
    script.append(("sweep", 0.0))
    if case["drain"] is not None:
        script.append(("wait_retired", f"w{case['drain'][1]}"))
    if case["scale"] is not None:
        # Block until the async scale task converged: every migration
        # it plans is then enqueued ahead of the stats barrier.
        script.append(("wait_workers", case["scale"][1]))
    return script


def _run_case(case, recognizer, registry) -> None:
    workload = generate_workload(
        gdp_templates(),
        clients=case["clients"],
        gestures_per_client=case["gestures"],
        seed=case["seed"],
    )
    ticks = workload_ticks(workload, dt=DT)
    end_t = end_time(ticks)
    script = build_script(case, ticks, end_t)
    expected = reference_script(recognizer, script, registry=registry)

    no_lp1 = ("w0",) if case["mixed"] and case["framing"] == "lp1" else ()

    async def run():
        async with InProcessCluster(
            recognizer,
            case["workers"],
            framing=case["framing"],
            no_lp1_shards=no_lp1,
            registry=registry,
        ) as cluster:
            return await drive_script(cluster, script)

    replies = asyncio.run(run())
    assert_byte_identical(replies, expected)


@given(case=cluster_cases())
def test_differential_cluster_vs_pool(case, cluster_recognizer, diff_registry):
    _run_case(case, cluster_recognizer, diff_registry)


def test_differential_pilot(cluster_recognizer, diff_registry):
    """One fixed, everything-at-once case that always runs: mixed-fleet
    framing, a crash, a drain, a swap, malformed lines, churn, and a
    mid-run sweep in a single script.  Debuggable without hypothesis."""
    case = {
        "workers": 3,
        "clients": 3,
        "gestures": 2,
        "seed": 23,
        "framing": "lp1",
        "mixed": True,
        "crash": (0.35, 1),
        "drain": (0.6, 2),
        "join": 0.45,
        "scale": None,
        "swap": (0.25, 0, "alt"),
        "bads": [(0.15, BAD_LINES[0]), (0.7, BAD_LINES[4])],
        "sweeps": [(0.5, 1e9)],
        "churn": [0.4],
        "rawop_at": 0.3,
    }
    _run_case(case, cluster_recognizer, diff_registry)


def test_differential_scale_cycle_pilot(cluster_recognizer, diff_registry):
    """A fixed scale-out → scale-in cycle under live traffic with a
    swap and sweeps in the mix: the admin ``scale`` path, joins with
    rebalance migrations, and drain-by-migration all in one script."""
    case = {
        "workers": 2,
        "clients": 3,
        "gestures": 2,
        "seed": 71,
        "framing": "lp1",
        "mixed": False,
        "crash": None,
        "drain": None,
        "join": None,
        "scale": (0.3, 4),
        "swap": (0.2, 1, "alt"),
        "bads": [(0.5, BAD_LINES[2])],
        "sweeps": [(0.6, 0.5)],
        "churn": [],
        "rawop_at": None,
    }
    _run_case(case, cluster_recognizer, diff_registry)
