"""Views — display objects with inheritable handler lists.

"Event handlers may be associated with view classes as well [as view
instances], and are inherited.  Associating a handler with an entire
class greatly improves efficiency, as a single handler is automatically
shared by many objects." (§3)

Handler lookup therefore walks: the view instance's own handlers, then
handlers registered on its class, then on each base class up the Python
MRO — Python's class machinery stands in for Objective-C's.

Views form a tree (a root window view containing shape views); picking
finds the topmost, most deeply nested view under a screen point.
"""

from __future__ import annotations

from typing import Iterator

from ..geometry import BoundingBox
from .handler import EventHandler
from .model import Model

__all__ = ["View"]


class View:
    """Base class for display objects."""

    # Per-class handler registry.  Deliberately NOT inherited via normal
    # attribute lookup: each class owns its own list, and handlers_for()
    # walks the MRO explicitly so subclasses both add to and see their
    # bases' handlers, in nearest-class-first order.
    _class_handlers: list[EventHandler] = []

    def __init__(self, model: Model | None = None):
        self.model = model
        self.parent: "View | None" = None
        self._children: list["View"] = []
        self._instance_handlers: list[EventHandler] = []
        self.visible = True
        if model is not None:
            model.add_observer(self.model_changed)

    # -- handler registration ------------------------------------------------

    @classmethod
    def add_class_handler(cls, handler: EventHandler) -> None:
        """Attach a handler to every (current and future) view of ``cls``."""
        if "_class_handlers" not in cls.__dict__:
            cls._class_handlers = []
        cls._class_handlers.append(handler)

    @classmethod
    def remove_class_handler(cls, handler: EventHandler) -> bool:
        """Detach a class handler; returns False if it was not attached
        directly to this class (inherited handlers must be removed from
        the class that owns them)."""
        own = cls.__dict__.get("_class_handlers", [])
        if handler in own:
            own.remove(handler)
            return True
        return False

    @classmethod
    def clear_class_handlers(cls) -> None:
        """Drop handlers attached directly to this class (not inherited ones)."""
        if "_class_handlers" in cls.__dict__:
            cls._class_handlers = []

    def add_handler(self, handler: EventHandler) -> None:
        """Attach a handler to this view instance only."""
        self._instance_handlers.append(handler)

    def remove_handler(self, handler: EventHandler) -> bool:
        if handler in self._instance_handlers:
            self._instance_handlers.remove(handler)
            return True
        return False

    def handlers(self) -> Iterator[EventHandler]:
        """All handlers that apply to this view, in query order.

        Instance handlers first (most specific), then class handlers
        walking the MRO from this class toward :class:`View`.
        """
        yield from self._instance_handlers
        for klass in type(self).__mro__:
            yield from klass.__dict__.get("_class_handlers", ())

    # -- the view tree --------------------------------------------------------

    def add_child(self, child: "View") -> None:
        """Append a child (drawn on top of earlier children)."""
        if child.parent is not None:
            child.parent.remove_child(child)
        child.parent = self
        self._children.append(child)

    def remove_child(self, child: "View") -> None:
        if child in self._children:
            self._children.remove(child)
            child.parent = None

    @property
    def children(self) -> tuple["View", ...]:
        return tuple(self._children)

    def descendants(self) -> Iterator["View"]:
        """Depth-first traversal of the subtree below this view."""
        for child in self._children:
            yield child
            yield from child.descendants()

    def bring_to_front(self, child: "View") -> None:
        """Raise a child to the top of the z-order."""
        if child in self._children:
            self._children.remove(child)
            self._children.append(child)

    # -- geometry & picking ----------------------------------------------------

    def bounds(self) -> BoundingBox:
        """This view's own extent; the default view is unbounded-empty."""
        return BoundingBox()

    def contains(self, x: float, y: float) -> bool:
        """Hit test.  Default: inside the bounding box."""
        return self.bounds().contains(x, y)

    def pick(self, x: float, y: float) -> "View | None":
        """Topmost visible view under ``(x, y)`` in this subtree.

        Children are scanned from front (last added) to back; a hit in a
        child beats a hit in this view, making picking "most nested wins".
        """
        if not self.visible:
            return None
        for child in reversed(self._children):
            hit = child.pick(x, y)
            if hit is not None:
                return hit
        if self.contains(x, y):
            return self
        return None

    # -- model coupling ----------------------------------------------------------

    def model_changed(self, model: Model) -> None:
        """Called when the observed model changes; default does nothing."""
