"""The two-phase interaction technique and direct-manipulation handlers."""

from .drag_handler import ClickHandler, DragHandler, Draggable
from .recorder import StrokeRecorder
from .gesture_handler import DEFAULT_TIMEOUT, GestureHandler, Phase
from .semantics import GestureContext, GestureSemantics

__all__ = [
    "DEFAULT_TIMEOUT",
    "ClickHandler",
    "DragHandler",
    "Draggable",
    "GestureContext",
    "GestureHandler",
    "GestureSemantics",
    "Phase",
    "StrokeRecorder",
]
