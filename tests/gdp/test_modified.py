"""Tests for the §2 "modified version of GDP".

"In a modified version of GDP, the initial angle of the rectangle
gesture determines the orientation of the rectangle. ... Also in the
modified version, the length of the line gesture determines the
thickness of the line."
"""

import math

import pytest

from repro.events import perform_gesture
from repro.gdp import GDPApp, LineShape, RectShape, build_gdp_semantics
from repro.geometry import Affine, Stroke
from repro.interaction import GestureContext, GestureSemantics
from repro.synth import GestureGenerator, gdp_templates


@pytest.fixture(scope="module")
def gestures():
    return GestureGenerator(gdp_templates(), seed=1234)


class TestSemanticsRegistry:
    def test_modified_flag_builds_distinct_semantics(self):
        plain = build_gdp_semantics(modified=False)
        modified = build_gdp_semantics(modified=True)
        assert set(plain) == set(modified)

    def test_plain_is_the_default(self, gdp_recognizer):
        app = GDPApp(recognizer=gdp_recognizer, use_eager=False)
        stroke = GestureGenerator(gdp_templates(), seed=9).generate(
            "line"
        ).stroke.translated(100, 100)
        app.perform(perform_gesture(stroke, dwell=0.3))
        assert app.shapes[0].thickness == 1.0


class TestModifiedRectangle:
    def test_canonical_gesture_yields_unrotated_rect(
        self, gdp_recognizer, gestures
    ):
        app = GDPApp(recognizer=gdp_recognizer, use_eager=False, modified=True)
        stroke = gestures.generate("rect").stroke.translated(150, 150)
        app.perform(perform_gesture(stroke, dwell=0.3))
        rect = app.shapes[0]
        assert isinstance(rect, RectShape)
        # The canonical gesture opens straight down, so orientation ~ 0
        # (within the generator's rotation wobble).
        assert abs(rect.angle) < 0.35

    def test_rotated_gesture_rotates_the_rectangle(self, gdp_recognizer):
        # Drive the semantics directly with a synthetic 30-degree
        # rotated opening (the full classifier would need multi-
        # orientation training to *recognize* it, which the paper notes;
        # the semantics mapping itself is what we verify).
        semantics = build_gdp_semantics(modified=True)["rect"]
        theta = math.radians(30)
        base = Stroke.from_xy(
            [(0, 0), (0, 12), (0, 24), (0, 36)], dt=0.01
        )  # straight down
        rotated = base.transformed(Affine.rotation(theta)).translated(200, 200)

        class FakeDispatch:
            pass

        app = GDPApp(recognizer=gdp_recognizer, use_eager=False, modified=True)
        context = GestureContext(
            view=app.view,
            dispatch=FakeDispatch(),
            gesture=rotated,
            class_name="rect",
        )
        semantics.on_recognized(context)
        rect = context.recog
        # Orientation = initial angle - pi/2 = theta (down rotated by theta).
        assert rect.angle == pytest.approx(theta, abs=0.02)


class TestModifiedLine:
    def test_line_thickness_scales_with_gesture_length(
        self, gdp_recognizer, gestures
    ):
        app = GDPApp(recognizer=gdp_recognizer, use_eager=False, modified=True)
        short = gestures.generate("line").stroke.translated(100, 100)
        app.perform(perform_gesture(short, dwell=0.3))
        thin = app.shapes[-1]
        assert isinstance(thin, LineShape)
        assert thin.thickness == pytest.approx(short.path_length() / 25.0, rel=0.01)

        # A gesture twice as long yields a line twice as thick.
        long = Stroke(
            p.scaled(2.0) for p in gestures.generate("line").stroke
        ).translated(300, 100)
        app.perform(perform_gesture(long, dwell=0.3))
        thick = app.shapes[-1]
        if isinstance(thick, LineShape) and thick is not thin:
            assert thick.thickness > thin.thickness

    def test_minimum_thickness_is_one(self, gdp_recognizer):
        semantics = build_gdp_semantics(modified=True)["line"]

        class FakeDispatch:
            pass

        app = GDPApp(recognizer=gdp_recognizer, use_eager=False, modified=True)
        tiny = Stroke.from_xy([(0, 0), (3, 2), (6, 5)], dt=0.01)
        context = GestureContext(
            view=app.view,
            dispatch=FakeDispatch(),
            gesture=tiny,
            class_name="line",
        )
        semantics.on_recognized(context)
        assert context.recog.thickness == 1.0


class TestGestureContextAttributes:
    def test_initial_angle_of_downward_stroke(self):
        class FakeView:
            pass

        class FakeDispatch:
            pass

        down = Stroke.from_xy([(0, 0), (0, 10), (0, 20)], dt=0.01)
        context = GestureContext(
            view=FakeView(), dispatch=FakeDispatch(), gesture=down
        )
        assert context.initial_angle == pytest.approx(math.pi / 2)

    def test_gesture_length(self):
        class FakeView:
            pass

        class FakeDispatch:
            pass

        stroke = Stroke.from_xy([(0, 0), (30, 40)], dt=0.01)
        context = GestureContext(
            view=FakeView(), dispatch=FakeDispatch(), gesture=stroke
        )
        assert context.gesture_length == pytest.approx(50.0)

    def test_initial_angle_of_short_stroke_is_zero(self):
        class FakeView:
            pass

        class FakeDispatch:
            pass

        context = GestureContext(
            view=FakeView(),
            dispatch=FakeDispatch(),
            gesture=Stroke.from_xy([(5, 5)]),
        )
        assert context.initial_angle == 0.0
