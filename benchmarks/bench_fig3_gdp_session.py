"""Figure 3 — a GDP gesture sequence, end to end.

Figure 3 walks a drawing through the gesture set and tabulates, per
gesture, which parameters are fixed at recognition time and which are
manipulated interactively.  The reproduction performs the same sequence
against a live GDP instance (rectangle, ellipse, line, group, copy,
rotate-scale, delete) and writes the evolving canvas plus the observed
parameter bindings to ``results/fig3_gdp_session.txt``.
"""

import pytest
from conftest import write_report

from repro.events import perform_gesture
from repro.gdp import GDPApp, GroupShape, train_gdp_recognizer
from repro.geometry import Stroke
from repro.synth import GestureGenerator, gdp_templates


@pytest.fixture(scope="module")
def recognizer():
    return train_gdp_recognizer(examples_per_class=10, seed=81)


def anchored(stroke, x, y):
    return stroke.translated(x - stroke.start.x, y - stroke.start.y)


def do(app, stroke, manip_xy=None, dwell=0.3):
    manip = Stroke.from_xy(manip_xy, dt=0.03) if manip_xy else None
    app.perform(perform_gesture(stroke, dwell=dwell, manipulation_path=manip))


def run_session(recognizer) -> tuple[GDPApp, list[str]]:
    app = GDPApp(recognizer=recognizer, use_eager=False)
    generator = GestureGenerator(gdp_templates(), seed=82)
    log = []

    # rectangle: corner 1 at recognition, corner 2 by manipulation
    rect_stroke = generator.generate("rect").stroke.translated(80, 80)
    do(app, rect_stroke, manip_xy=[(300, 240)])
    rect = app.shapes[-1]
    log.append(
        f"rectangle: corner1 fixed at recognition "
        f"({rect.corners[0][0]:.0f},{rect.corners[0][1]:.0f}); "
        f"corner2 manipulated to ({rect.corners[1][0]:.0f},"
        f"{rect.corners[1][1]:.0f})"
    )

    # ellipse: center at recognition; size/eccentricity by manipulation
    ell_stroke = generator.generate("ellipse").stroke.translated(520, 150)
    do(app, ell_stroke, manip_xy=[(600, 190)])
    ellipse = app.shapes[-1]
    log.append(
        f"ellipse: center fixed ({ellipse.center[0]:.0f},"
        f"{ellipse.center[1]:.0f}); radii manipulated to "
        f"({ellipse.rx:.0f},{ellipse.ry:.0f})"
    )

    # line: endpoint 1 at recognition, endpoint 2 by manipulation
    line_stroke = generator.generate("line").stroke.translated(100, 420)
    do(app, line_stroke, manip_xy=[(300, 520)])
    line = app.shapes[-1]
    log.append(
        f"line: endpoint1 fixed ({line.endpoints[0][0]:.0f},"
        f"{line.endpoints[0][1]:.0f}); endpoint2 manipulated to "
        f"({line.endpoints[1][0]:.0f},{line.endpoints[1][1]:.0f})"
    )

    # group: enclosed objects at recognition (circle the ellipse, whose
    # center landed near (580, 170) — the gesture starts at the circle
    # top, so the circled region is roughly (530..630, 120..220))
    ex, ey = ellipse.center
    group_stroke = generator.generate("group").stroke.translated(
        ex - 50, ey - 50
    )
    do(app, group_stroke)
    groups = [s for s in app.shapes if isinstance(s, GroupShape)]
    log.append(f"group: enclosed {len(groups[-1].members)} object(s)")

    # copy: object at recognition, position of the copy by manipulation
    copy_stroke = anchored(
        generator.generate("copy").stroke, *line.endpoints[0]
    )
    do(app, copy_stroke, manip_xy=[(copy_stroke.end.x + 150, copy_stroke.end.y - 40)])
    log.append(f"copy: duplicated the line; canvas now {len(app.shapes)} shapes")

    # rotate-scale: center of rotation at recognition, size/orientation
    # by manipulation (double the handle distance)
    rs_stroke = anchored(
        generator.generate("rotate-scale").stroke, *rect.corners[0]
    )
    cx, cy = rs_stroke.start.x, rs_stroke.start.y
    hx, hy = rs_stroke.end.x, rs_stroke.end.y
    do(app, rs_stroke, manip_xy=[(cx + (hx - cx) * 2, cy + (hy - cy) * 2)])
    log.append(
        f"rotate-scale: center fixed ({cx:.0f},{cy:.0f}); "
        f"rect scaled, angle now {rect.angle:.2f} rad"
    )

    # delete: object at gesture start
    del_stroke = anchored(
        generator.generate("delete").stroke, *line.endpoints[0]
    )
    do(app, del_stroke)
    log.append(f"delete: removed the line; canvas now {len(app.shapes)} shapes")

    return app, log


def test_fig3_session(recognizer):
    app, log = run_session(recognizer)
    content = "\n".join(
        [
            "Figure 3 reproduction: a GDP gesture session",
            "(parameters fixed at recognition vs set by manipulation)",
            "",
            *log,
            "",
            "Final canvas:",
            app.render(cols=72, rows=20),
        ]
    )
    write_report("fig3_gdp_session", content)
    # The sequence leaves: rect (scaled), ellipse group, line copy.
    assert len(app.shapes) == 3
    groups = [s for s in app.shapes if isinstance(s, GroupShape)]
    assert len(groups) == 1 and len(groups[0].members) == 1


def test_fig3_session_time(recognizer, benchmark):
    app, log = benchmark(lambda: run_session(recognizer))
    assert len(log) == 7
