"""Pure incremental kinematic detectors for the modality layer.

Each detector consumes an (x, y, t) stream in constant work per point
and exposes exactly the state its modality's semantics need.  None of
them knows about sessions, pools, or decisions — that composition lives
in :mod:`repro.modal.semantics` and :mod:`repro.modal.compose` — so
they are directly testable against hand-built streams, including the
edge cases the config documents (inclusive thresholds, zero-duration
holds, single-point strokes).

The swipe detector is the EXWM-VR design: a sliding time window over
recent samples, net displacement and path length inside it, a velocity
threshold on the displacement, a linearity check (net/path) that
rejects curved paths, and direction quantization to 4 or 8 compass
points.  Scroll is the Pharo design: accumulate per-axis travel until
the lock criterion is met, then the axis is *persistent* — once
vertical, never horizontal.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..geometry import Point
from ..multipath import TwoFingerTracker
from .config import ModalityConfig

__all__ = [
    "HoldDetector",
    "PairTracker",
    "ScrollAxisLock",
    "SwipeDetector",
    "SwipeHit",
    "TapTracker",
    "edge_of",
    "quantize_direction",
]

# Compass names counterclockwise from east, matching the y-down screen
# frame (north is up) and the modal synth families' class suffixes.
_COMPASS_8 = ("e", "ne", "n", "nw", "w", "sw", "s", "se")
_COMPASS_4 = ("e", "n", "w", "s")


def quantize_direction(dx: float, dy: float, directions: int = 8) -> str:
    """The compass point nearest a screen-frame displacement.

    Sector boundaries fall halfway between compass points; an exactly
    diagonal displacement in 4-direction mode rounds counterclockwise
    (northeast becomes north), which keeps the mapping total and
    deterministic.
    """
    if directions not in (4, 8):
        raise ValueError("directions must be 4 or 8")
    names = _COMPASS_8 if directions == 8 else _COMPASS_4
    # y grows downward on screen, so flip it for the math-frame angle.
    angle = math.atan2(-dy, dx)
    sector = 2.0 * math.pi / directions
    # Half-up (not banker's) rounding: exact sector boundaries always
    # resolve counterclockwise, independent of index parity.
    index = int(math.floor(angle / sector + 0.5)) % directions
    return names[index]


def edge_of(
    x: float, y: float, viewport: tuple[float, float], margin: float
) -> str | None:
    """Which viewport edge a point sits within ``margin`` of, if any.

    ``viewport`` is (width, height) with the origin at the top left.
    Corners resolve to the *nearest* edge (ties go horizontal-first:
    w/e before n/s), so the result is single-valued.
    """
    width, height = viewport
    candidates = []
    if x <= margin:
        candidates.append((x, "w"))
    if x >= width - margin:
        candidates.append((width - x, "e"))
    if y <= margin:
        candidates.append((y, "n"))
    if y >= height - margin:
        candidates.append((height - y, "s"))
    if not candidates:
        return None
    return min(candidates, key=lambda pair: pair[0])[1]


class HoldDetector:
    """Tracks a press's drift from its anchor and its age.

    A hold is a press that never drifted more than ``hold_max_drift``
    from the down point and has been down at least ``hold_duration``
    (inclusive; a zero duration holds immediately).
    """

    def __init__(self, config: ModalityConfig, x: float, y: float, t: float):
        self._config = config
        self._x0, self._y0 = x, y
        self._t0 = t
        self.max_drift = 0.0

    def move(self, x: float, y: float) -> None:
        self.max_drift = max(
            self.max_drift, math.hypot(x - self._x0, y - self._y0)
        )

    @property
    def within_drift(self) -> bool:
        return self.max_drift <= self._config.hold_max_drift

    def confirm_time(self) -> float:
        """The earliest instant this press can qualify as a hold."""
        return self._t0 + self._config.hold_duration

    def is_hold(self, now: float) -> bool:
        return self.within_drift and now >= self.confirm_time()


class TapTracker:
    """Cross-stroke tap and double-tap windows with debounce.

    Feed every finished stroke through :meth:`stroke_end`.  A stroke
    within the tap drift/duration bounds fires ``"tap"`` immediately at
    its up; a second qualifying tap whose down lands within
    ``double_tap_gap`` of the previous up *and* within
    ``double_tap_radius`` of it fires ``"double_tap"`` (and closes the
    chain).  A second down sooner than ``debounce`` is switch bounce:
    swallowed entirely, the pending tap left armed.  Any non-tap stroke
    breaks the chain.
    """

    def __init__(self, config: ModalityConfig):
        self._config = config
        self._last: tuple[float, float, float] | None = None  # x, y, up_t

    def stroke_end(
        self, x: float, y: float, down_t: float, up_t: float, drift: float
    ) -> str | None:
        c = self._config
        if up_t - down_t > c.tap_max_duration or drift > c.tap_max_drift:
            self._last = None
            return None
        if self._last is not None:
            lx, ly, last_up = self._last
            gap = down_t - last_up
            if gap < c.debounce:
                return None  # bounce: the armed tap stays armed
            if gap <= c.double_tap_gap and (
                math.hypot(x - lx, y - ly) <= c.double_tap_radius
            ):
                self._last = None
                return "double_tap"
        self._last = (x, y, up_t)
        return "tap"


class ScrollAxisLock:
    """Accumulates per-axis travel; locks the dominant axis forever.

    The lock engages at the first point where total travel reaches
    ``scroll_min_travel`` *and* one axis dominates the other by
    ``scroll_axis_ratio``.  From then on :meth:`feed` projects every
    delta onto the locked axis — once vertical, never horizontal.
    """

    def __init__(self, config: ModalityConfig, x: float, y: float):
        self._config = config
        self._x, self._y = x, y
        self._travel_x = 0.0
        self._travel_y = 0.0
        self.axis: str | None = None  # "v" or "h" once locked

    def feed(self, x: float, y: float) -> tuple[str, float] | None:
        """Advance to a new point; after lock, the axis-projected delta."""
        dx, dy = x - self._x, y - self._y
        self._x, self._y = x, y
        if self.axis is None:
            self._travel_x += abs(dx)
            self._travel_y += abs(dy)
            c = self._config
            if self._travel_x + self._travel_y >= c.scroll_min_travel:
                lo = min(self._travel_x, self._travel_y)
                hi = max(self._travel_x, self._travel_y)
                if lo == 0.0 or hi / lo >= c.scroll_axis_ratio:
                    self.axis = "v" if self._travel_y >= self._travel_x else "h"
            if self.axis is None:
                return None
            # The locking delta itself scrolls: report it projected.
        return (self.axis, dy if self.axis == "v" else dx)


@dataclass(frozen=True)
class SwipeHit:
    """What the velocity window saw when a swipe qualified."""

    direction: str
    velocity: float  # px/s of net displacement across the window
    linearity: float  # net displacement / path length, in (0, 1]
    t: float


class SwipeDetector:
    """Sliding velocity window with travel, linearity and direction.

    :meth:`feed` reports a :class:`SwipeHit` at every sample where the
    window qualifies (the semantics layer latches the first one) and
    ``None`` otherwise.  A single-point stroke can never fire: the
    window needs a time span.  All comparisons are inclusive, so a
    windowed velocity of exactly ``swipe_min_velocity`` fires.
    """

    def __init__(self, config: ModalityConfig):
        self._config = config
        self._window: deque[tuple[float, float, float]] = deque()
        self._path = 0.0  # path length inside the window

    def feed(self, x: float, y: float, t: float) -> SwipeHit | None:
        c = self._config
        if self._window:
            px, py, _ = self._window[-1]
            self._path += math.hypot(x - px, y - py)
        self._window.append((x, y, t))
        while self._window[0][2] < t - c.swipe_window and len(self._window) > 1:
            ox, oy, _ = self._window.popleft()
            nx, ny, _ = self._window[0]
            self._path -= math.hypot(nx - ox, ny - oy)
        if len(self._window) < 2 or self._path < c.swipe_min_travel:
            return None
        x0, y0, t0 = self._window[0]
        span = t - t0
        if span <= 0.0:
            return None
        net = math.hypot(x - x0, y - y0)
        velocity = net / span
        if velocity < c.swipe_min_velocity:
            return None
        linearity = net / self._path if self._path > 0.0 else 0.0
        if linearity < c.swipe_min_linearity:
            return None
        return SwipeHit(
            direction=quantize_direction(x - x0, y - y0, c.swipe_directions),
            velocity=velocity,
            linearity=linearity,
            t=t,
        )


class PairTracker:
    """Two concurrent paths as one manipulation, via the multipath TRS.

    Wraps :class:`~repro.multipath.TwoFingerTracker`: every update
    yields the incremental similarity transform, while the tracker
    accumulates the finger-gap change and the pair-segment rotation.
    :meth:`classify` stays ``None`` until one commitment threshold is
    crossed, then names the manipulation — ``pinch_in``/``pinch_out``
    when the gap change reaches ``pinch_min_travel`` first, ``rotate``
    when the accumulated angle reaches ``rotate_min_angle`` first (gap
    wins exact ties, deterministically).
    """

    def __init__(
        self,
        config: ModalityConfig,
        ax: float, ay: float,
        bx: float, by: float,
    ):
        self._config = config
        self._trs = TwoFingerTracker(Point(ax, ay, 0.0), Point(bx, by, 0.0))
        self._gap0 = math.hypot(bx - ax, by - ay)
        self._gap = self._gap0
        self._angle0 = math.atan2(by - ay, bx - ax)
        self._turn = 0.0
        self._kind: str | None = None

    def update(self, ax: float, ay: float, bx: float, by: float):
        """Feed both fingers' positions; the incremental Affine."""
        transform = self._trs.update(Point(ax, ay, 0.0), Point(bx, by, 0.0))
        self._gap = math.hypot(bx - ax, by - ay)
        angle = math.atan2(by - ay, bx - ax)
        delta = angle - self._angle0 - self._turn
        while delta > math.pi:
            delta -= 2.0 * math.pi
        while delta <= -math.pi:
            delta += 2.0 * math.pi
        self._turn += delta
        if self._kind is None:
            c = self._config
            if abs(self._gap - self._gap0) >= c.pinch_min_travel:
                self._kind = "pinch_out" if self._gap > self._gap0 else "pinch_in"
            elif abs(self._turn) >= c.rotate_min_angle:
                self._kind = "rotate"
        return transform

    @property
    def gap_change(self) -> float:
        return self._gap - self._gap0

    @property
    def turn(self) -> float:
        """Accumulated pair rotation in radians (screen clockwise > 0)."""
        return self._turn

    def classify(self) -> str | None:
        return self._kind
