"""AdaptPipeline: bit-identity with batch training, incrementality, state.

The load-bearing claim: a per-user candidate built incrementally through
the stage cache has the *same content hash* as
:func:`~repro.eager.train_eager_recognizer` run from scratch on the
combined example set — personalization never forks the training
semantics.
"""

from __future__ import annotations

import json

import pytest

from repro.adapt import AdaptPipeline
from repro.adapt.retrain import _combined_manifest
from repro.eager import EagerTrainingConfig, train_eager_recognizer
from repro.geometry import Point, Stroke
from repro.hashing import content_hash
from repro.serve import ModelRegistry

from .conftest import user_examples


def make_pipeline(adapt_env, tmp_path, cached=True, state=True):
    registry_root, cache_dir, _ = adapt_env
    return AdaptPipeline(
        registry_root,
        "gdp",
        cache_dir=cache_dir if cached else None,
        state_dir=tmp_path / "state" if state else None,
    )


class TestBitIdentity:
    def test_candidate_hash_equals_batch_training(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        pipeline.fold("alice", user_examples(seed=99))
        result = pipeline.run("alice")

        base_manifest, _ = pipeline._base_manifest()
        combined = _combined_manifest(
            base_manifest, pipeline.load_state("alice")["examples"]
        )
        by_class: dict = {}
        for ex in combined["examples"]:
            by_class.setdefault(ex["class"], []).append(
                Stroke(Point(x, y, t) for x, y, t in ex["points"])
            )
        report = train_eager_recognizer(by_class, EagerTrainingConfig())
        assert content_hash(report.recognizer.to_dict()) == result.model_hash

    def test_cold_cache_reproduces_warm_hash(self, adapt_env, tmp_path):
        warm = make_pipeline(adapt_env, tmp_path)
        warm.fold("alice", user_examples(seed=99))
        cold = make_pipeline(adapt_env, tmp_path, cached=False, state=False)
        cold.fold("alice", user_examples(seed=99))
        assert warm.run("alice").model_hash == cold.run("alice").model_hash

    def test_new_class_changes_model_and_is_reported(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        _, _, base = adapt_env
        pipeline.fold(
            "carol",
            user_examples(seed=55, classes=1, per_class=3,
                          label=lambda _: "carol-special"),
        )
        result = pipeline.run("carol")
        assert result.new_classes == ["carol-special"]
        assert result.class_count == base.class_count + 1
        assert result.model_hash != base.model_hash


class TestIncrementality:
    def test_rerun_is_a_pure_cache_replay(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        pipeline.fold("alice", user_examples(seed=99))
        first = pipeline.run("alice")
        again = pipeline.run("alice")
        assert again.model_hash == first.model_hash
        assert again.stages_run == []
        assert len(again.stages_cached) == 6

    def test_second_user_reuses_base_prefixes(self, adapt_env, tmp_path):
        # Fresh users (seeds unused elsewhere) so both labelling passes
        # actually run; the shared session cache may already hold the
        # base strokes' prefixes, which only strengthens the claim.
        pipeline = make_pipeline(adapt_env, tmp_path)
        _, _, base = adapt_env
        pipeline.fold("dora", user_examples(seed=501))
        first = pipeline.run("dora")
        # Labelling touched every combined example, through the per-
        # example prefix cache.
        assert (
            first.prefixes_computed + first.prefixes_cached
            == base.example_count + first.user_example_count
        )
        # A later user recomputes nothing of the base set — at most its
        # own strokes' prefixes are new work.
        pipeline.fold("eve", user_examples(seed=502))
        second = pipeline.run("eve")
        assert second.prefixes_cached >= base.example_count
        assert second.prefixes_computed <= second.user_example_count

    def test_base_manifest_recovered_from_cache_not_rebuilt(
        self, adapt_env, tmp_path
    ):
        pipeline = make_pipeline(adapt_env, tmp_path)
        _, _, base = adapt_env
        manifest, manifest_hash = pipeline._base_manifest()
        assert manifest_hash == base.lineage["dataset"]
        assert len(manifest["examples"]) == base.example_count


class TestFoldState:
    def test_fold_is_idempotent_and_appends_new_tail(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        batch = user_examples(seed=99)
        state = pipeline.fold("alice", batch)
        assert len(state["examples"]) == len(batch)
        state = pipeline.fold("alice", batch)  # replayed harvest: no-op
        assert len(state["examples"]) == len(batch)
        extra = user_examples(seed=321, classes=1, per_class=1)
        state = pipeline.fold("alice", batch + extra)
        assert len(state["examples"]) == len(batch) + 1
        assert state["examples"][-1]["class"] == extra[0]["class"]

    def test_state_persists_across_pipelines(self, adapt_env, tmp_path):
        first = make_pipeline(adapt_env, tmp_path)
        first.fold("alice", user_examples(seed=99))
        second = make_pipeline(adapt_env, tmp_path)
        assert len(second.load_state("alice")["examples"]) == 4
        # The state file name is a hash: ids with separators are safe.
        third = make_pipeline(adapt_env, tmp_path)
        third.fold("k1:c2/x", user_examples(seed=99, classes=1, per_class=1))
        path = third.state_path("k1:c2/x")
        assert path.exists()
        assert json.loads(path.read_text())["user"] == "k1:c2/x"

    def test_run_without_fold_refuses(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        with pytest.raises(ValueError, match="nothing harvested"):
            pipeline.run("nobody")


class TestPublish:
    def test_publish_links_lineage_to_base_and_harvest(
        self, adapt_env, tmp_path
    ):
        registry_root, _, base = adapt_env
        pipeline = make_pipeline(adapt_env, tmp_path)
        pipeline.fold("alice", user_examples(seed=99))
        result = pipeline.run("alice")
        published = pipeline.publish(result)
        assert published.version == result.version

        registry = ModelRegistry(registry_root)
        metadata = registry.metadata_of(published.name, published.version)
        assert metadata["source"] == "repro.adapt"
        lineage = metadata["lineage"]
        assert lineage["base"] == {
            "name": "gdp", "version": base.published["version"],
        }
        assert lineage["user"] == "alice"
        assert lineage["model_hash"] == result.model_hash
        assert set(lineage["stages"]) == {
            "manifest", "features", "classifier", "subgestures", "auc",
            "package",
        }
        # The candidate actually loads and serves.
        loaded = registry.load(published.name)
        assert "carol-special" not in loaded.class_names

    def test_candidate_name_sanitizes_separator_ids(self, adapt_env, tmp_path):
        pipeline = make_pipeline(adapt_env, tmp_path)
        examples = user_examples(seed=99, classes=1, per_class=1)
        pipeline.fold("k1:c2", examples)
        result = pipeline.run("k1:c2")
        assert "/" not in result.candidate_name
        assert ":" not in result.candidate_name
        assert result.candidate_name.startswith("gdp--k1-c2-")
        # Two ids that sanitize alike must not collide.
        pipeline.fold("k1/c2", examples)
        other = pipeline.run("k1/c2")
        assert other.candidate_name != result.candidate_name
