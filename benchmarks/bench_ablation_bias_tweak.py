"""Ablation — the §4.6 conservatism knobs: the 5:1 ambiguity bias and the
post-training constant tweak.

"It is very important that subgestures not be judged unambiguous
wrongly ... the constant terms of the evaluation function of the
incomplete classes are incremented ... to bias the classifier so that it
believes that ambiguous gestures are five times more likely."

Expected shape: removing the bias/tweak makes the recognizer *more
eager* (it commits earlier) but *less accurate* (it commits before
gestures are genuinely unambiguous).  The ablation sweeps the bias ratio
and toggles the tweak on the figure-9 workload.
"""

import pytest
from conftest import TEST_PARAMS, TRAIN_PER_CLASS, TEST_PER_CLASS, write_report

from repro.datasets import GestureSet
from repro.eager import EagerTrainingConfig, train_eager_recognizer
from repro.evaluate import evaluate_recognizer
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def workload():
    train = GestureGenerator(
        eight_direction_templates(), seed=111
    ).generate_strokes(TRAIN_PER_CLASS)
    test = GestureSet.from_generator(
        "test",
        GestureGenerator(
            eight_direction_templates(), params=TEST_PARAMS, seed=112
        ),
        TEST_PER_CLASS,
    )
    return train, test


def run(train, test, **config_kwargs):
    config = EagerTrainingConfig(**config_kwargs)
    report = train_eager_recognizer(train, config=config)
    return evaluate_recognizer(report.recognizer, test)


def test_bias_tweak_ablation(workload):
    train, test = workload
    configurations = [
        ("paper (bias 5:1 + tweak)", dict()),
        ("no tweak", dict(tweak=False)),
        ("no bias", dict(ambiguity_bias_ratio=1.0)),
        ("no bias, no tweak", dict(ambiguity_bias_ratio=1.0, tweak=False)),
        ("bias 25:1", dict(ambiguity_bias_ratio=25.0)),
    ]
    rows = []
    results = {}
    for label, kwargs in configurations:
        result = run(train, test, **kwargs)
        results[label] = result
        rows.append(
            f"{label:<26} eager acc {result.eager_accuracy:6.1%}   "
            f"seen {result.eagerness.mean_fraction_seen:6.1%}"
        )
    write_report(
        "ablation_bias_tweak",
        "Ablation: the conservatism knobs of §4.6 (figure-9 workload)\n"
        "expected: less conservatism -> earlier commitment, more errors\n\n"
        + "\n".join(rows),
    )

    paper = results["paper (bias 5:1 + tweak)"]
    naked = results["no bias, no tweak"]
    heavy = results["bias 25:1"]
    # Removing the safety nets must not make the recognizer less eager.
    assert (
        naked.eagerness.mean_fraction_seen
        <= paper.eagerness.mean_fraction_seen + 1e-9
    )
    # And must not improve accuracy (usually strictly hurts).
    assert naked.eager_accuracy <= paper.eager_accuracy + 0.02
    # Cranking the bias up makes the recognizer examine at least as much.
    assert (
        heavy.eagerness.mean_fraction_seen
        >= paper.eagerness.mean_fraction_seen - 1e-9
    )


def test_bias_tweak_training_overhead(workload, benchmark):
    """The tweak loop's cost relative to plain training."""
    train, test = workload
    benchmark(
        lambda: train_eager_recognizer(train, config=EagerTrainingConfig())
    )
