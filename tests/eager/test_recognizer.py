"""Unit tests for the runtime eager recognizer (paper §4.3)."""

import pytest

from repro.eager import EagerRecognizer, EagerResult
from repro.geometry import Stroke
from repro.synth import GestureGenerator, eight_direction_templates


@pytest.fixture(scope="module")
def test_examples():
    generator = GestureGenerator(eight_direction_templates(), seed=555)
    return generator.generate_examples(5)


class TestSession:
    def test_undecided_before_enough_points(self, directions_recognizer):
        session = directions_recognizer.session()
        gesture = GestureGenerator(
            eight_direction_templates(), seed=1
        ).generate("ur").stroke
        assert session.add_point(gesture[0]) is None
        assert not session.decided

    def test_decides_during_stroke(self, directions_recognizer, test_examples):
        stroke = test_examples["ur"][0].stroke
        session = directions_recognizer.session()
        decided_at = None
        for i, p in enumerate(stroke, start=1):
            if session.add_point(p) is not None:
                decided_at = i
                break
        assert decided_at is not None and decided_at < len(stroke)
        assert session.class_name in directions_recognizer.class_names

    def test_points_after_decision_are_ignored(
        self, directions_recognizer, test_examples
    ):
        stroke = test_examples["dr"][0].stroke
        session = directions_recognizer.session()
        for p in stroke:
            session.add_point(p)
        decided = session.class_name
        seen = session.points_seen
        # Manipulation-phase points must not change the verdict.
        session.add_point(stroke[-1].translated(500, 500))
        assert session.class_name == decided
        assert session.points_seen == seen

    def test_finish_classifies_undecided_session(self, directions_recognizer):
        session = directions_recognizer.session()
        short = Stroke.from_xy([(0, 0), (10, 0), (20, 0)], dt=0.01)
        for p in short:
            session.add_point(p)
        # A bare horizontal run is ambiguous; finish() must still decide.
        name = session.finish()
        assert name in directions_recognizer.class_names
        assert session.decided

    def test_finish_on_empty_session_raises(self, directions_recognizer):
        with pytest.raises(ValueError):
            directions_recognizer.session().finish()


class TestRecognize:
    def test_result_fields(self, directions_recognizer, test_examples):
        result = directions_recognizer.recognize(test_examples["ul"][0].stroke)
        assert isinstance(result, EagerResult)
        assert 0 < result.points_seen <= result.total_points
        assert 0.0 < result.fraction_seen <= 1.0

    def test_eager_flag_iff_early(self, directions_recognizer, test_examples):
        for examples in test_examples.values():
            for example in examples:
                result = directions_recognizer.recognize(example.stroke)
                assert result.eager == (
                    result.points_seen < result.total_points
                )

    def test_accuracy_on_held_out(self, directions_recognizer, test_examples):
        hits = total = 0
        for class_name, examples in test_examples.items():
            for example in examples:
                total += 1
                hits += (
                    directions_recognizer.recognize(example.stroke).class_name
                    == class_name
                )
        assert hits / total > 0.85

    def test_eagerness_beats_waiting_for_the_end(
        self, directions_recognizer, test_examples
    ):
        fractions = [
            directions_recognizer.recognize(ex.stroke).fraction_seen
            for exs in test_examples.values()
            for ex in exs
        ]
        assert sum(fractions) / len(fractions) < 0.95

    def test_never_before_the_corner(
        self, directions_recognizer, test_examples
    ):
        # The first segment is shared by two classes, so commitment
        # strictly before the corner would be guessing.
        for examples in test_examples.values():
            for example in examples:
                result = directions_recognizer.recognize(example.stroke)
                if result.eager and result.class_name == example.class_name:
                    assert result.points_seen >= example.oracle_points - 2

    def test_classify_full_bypasses_eagerness(
        self, directions_recognizer, test_examples
    ):
        stroke = test_examples["lu"][0].stroke
        assert directions_recognizer.classify_full(stroke) in (
            directions_recognizer.class_names
        )


class TestSerialization:
    def test_round_trip(self, directions_recognizer, test_examples):
        clone = EagerRecognizer.from_dict(directions_recognizer.to_dict())
        for examples in list(test_examples.values())[:3]:
            stroke = examples[0].stroke
            original = directions_recognizer.recognize(stroke)
            restored = clone.recognize(stroke)
            assert restored.class_name == original.class_name
            assert restored.points_seen == original.points_seen

    def test_round_trip_is_json_compatible(self, directions_recognizer):
        import json

        blob = json.dumps(directions_recognizer.to_dict())
        clone = EagerRecognizer.from_dict(json.loads(blob))
        assert clone.class_names == directions_recognizer.class_names
