"""Shared fixtures.

Training a recognizer takes a noticeable fraction of a second, so the
expensive trained artifacts are session-scoped: every test that needs
"a trained eager recognizer on the 8-direction set" shares one.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hyp_settings

# Hypothesis effort is profile-driven: "ci" (the ambient default) keeps
# property suites bounded for the tier-1 run; "deep" — selected with
# ``--hypothesis-profile=deep`` — turns the differential cluster fuzzer
# loose.  Tests that pin ``max_examples`` explicitly are unaffected by
# the profile switch; only the profile-inheriting fuzz tests scale.
_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
hyp_settings.register_profile("ci", max_examples=8, **_COMMON)
hyp_settings.register_profile("deep", max_examples=200, **_COMMON)
hyp_settings.load_profile("ci")


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden trace/metrics files instead of diffing "
        "against them (tests/obs/test_golden_traces.py)",
    )


@pytest.fixture
def regen_golden(request) -> bool:
    return request.config.getoption("--regen-golden")

from repro.datasets import GestureSet
from repro.eager import EagerTrainingReport, train_eager_recognizer
from repro.recognizer import GestureClassifier
from repro.synth import (
    GenerationParams,
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
    ud_templates,
)


@pytest.fixture(scope="session")
def directions_generator() -> GestureGenerator:
    return GestureGenerator(eight_direction_templates(), seed=101)


@pytest.fixture(scope="session")
def directions_train(directions_generator) -> dict:
    return directions_generator.generate_strokes(10)


@pytest.fixture(scope="session")
def directions_report(directions_train) -> EagerTrainingReport:
    return train_eager_recognizer(directions_train)


@pytest.fixture(scope="session")
def directions_recognizer(directions_report):
    return directions_report.recognizer


@pytest.fixture(scope="session")
def directions_test_set() -> GestureSet:
    generator = GestureGenerator(eight_direction_templates(), seed=202)
    return GestureSet.from_generator("directions-test", generator, 10)


@pytest.fixture(scope="session")
def directions_classifier(directions_train) -> GestureClassifier:
    return GestureClassifier.train(directions_train)


@pytest.fixture(scope="session")
def gdp_generator() -> GestureGenerator:
    return GestureGenerator(gdp_templates(), seed=303)


@pytest.fixture(scope="session")
def gdp_report(gdp_generator) -> EagerTrainingReport:
    return train_eager_recognizer(gdp_generator.generate_strokes(10))


@pytest.fixture(scope="session")
def gdp_recognizer(gdp_report):
    return gdp_report.recognizer


@pytest.fixture(scope="session")
def ud_generator() -> GestureGenerator:
    # Slightly tamer noise so the U/D toy example stays textbook-clean.
    params = GenerationParams(rotation_sigma=0.04, jitter=0.8)
    return GestureGenerator(ud_templates(), params=params, seed=404)


@pytest.fixture(scope="session")
def masked_recognizer(directions_train, directions_report):
    """An eager recognizer whose *full* classifier is feature-masked.

    Features 8-10 (the accumulated turn angles) dropped: a realistic
    mask (the paper suggests pruning features per application) that
    exercises the serving layer's masked-weight embedding.
    ``train_eager_recognizer`` insists on a full-feature classifier, so
    the masked variant is assembled directly: same AUC, same training
    data, but the final verdict comes from a masked classifier.
    """
    from repro.eager import EagerRecognizer

    masked = GestureClassifier.train(
        directions_train, feature_indices=[0, 1, 2, 3, 4, 5, 6, 7, 11, 12]
    )
    base = directions_report.recognizer
    return EagerRecognizer(masked, base.auc, min_points=base.min_points)
