"""Serving-layer throughput — batched versus per-session recognition.

The paper's §5 numbers establish that *one* eager recognition is cheap
(a fixed per-point cost).  The serving layer's claim is about many:
advancing hundreds of concurrent sessions one point per tick, the
batched evaluator (one matrix product per tick across every session)
beats the per-session scalar path by a wide margin — while producing
*identical* decision streams, because rows the evaluator cannot prove
unaffected by vectorization are re-decided by the scalar path.

Two checks:

* decision identity at small scale, across gesture families (including
  GDP, whose full classifier uses a feature-mask — the trickier layout);
* >= 3x points/sec for batched over sequential at 256 concurrent
  sessions, on the recognition-heavy "notes" family (its classes are
  prefixes of one another, so sessions stay undecided through most of
  the stroke — the regime the batched evaluator exists for).  The
  throughput workload streams without mid-stroke dwells: a dwell
  triggers the motionless timeout, after which the rest of the stroke
  is cheap manipulation traffic in either mode, diluting the very work
  being compared.  The timeout path is exercised (and the two modes'
  decisions proven identical on it) by the identity check above, and
  decision identity is re-asserted on the exact throughput workload
  before timing.

Throughput is reported as the best of several interleaved repeats per
mode (GC paused while timing), which measures capability rather than
scheduler noise on a shared machine.
"""

from __future__ import annotations

import gc

from conftest import write_bench_json, write_report

from repro.eager import train_eager_recognizer
from repro.serve import (
    compare_modes,
    family_templates,
    generate_workload,
    run_load,
)
from repro.synth import GestureGenerator

CLIENTS = 256
GESTURES_PER_CLIENT = 4
REPEATS = 5


def _recognizer(family: str):
    templates = family_templates(family)
    generator = GestureGenerator(templates, seed=3)
    return templates, train_eager_recognizer(generator.generate_strokes(12)).recognizer


def test_batched_decisions_identical_to_sequential():
    """Same workload, both modes: decision streams must match exactly."""
    for family in ("gdp", "notes", "directions"):
        templates, recognizer = _recognizer(family)
        workload = generate_workload(
            templates, clients=8, gestures_per_client=4, seed=11
        )
        batched, sequential = compare_modes(recognizer, workload)
        assert batched.decision_log == sequential.decision_log
        assert batched.errors == 0
        reasons = {d.reason for d in batched.decision_log if d.kind == "recog"}
        # The workload exercises every decision path.
        assert "timeout" in reasons and ("eager" in reasons or "up" in reasons)


def _best_points_per_sec(recognizer, workload, batched: bool, repeats: int):
    best = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            result = run_load(recognizer, workload, batched=batched)
        finally:
            gc.enable()
        if best is None or result.points_per_sec > best.points_per_sec:
            best = result
    return best


def test_throughput_256_sessions():
    """Batched must clear 3x sequential at 256 concurrent sessions."""
    templates, recognizer = _recognizer("notes")
    workload = generate_workload(
        templates,
        clients=CLIENTS,
        gestures_per_client=GESTURES_PER_CLIENT,
        seed=5,
        dwell_every=0,
    )
    # The comparison below is only meaningful if both modes do the same
    # work — assert it on this exact workload before timing it.
    batched_log, sequential_log = compare_modes(recognizer, workload)
    assert batched_log.decision_log == sequential_log.decision_log

    run_load(recognizer, workload, batched=True)  # warm numpy + allocator
    run_load(recognizer, workload, batched=False)
    batched = _best_points_per_sec(recognizer, workload, True, REPEATS)
    sequential = _best_points_per_sec(recognizer, workload, False, REPEATS)
    speedup = batched.points_per_sec / sequential.points_per_sec
    if speedup < 3.0:  # one retry: absorb a throttled first measurement
        again = _best_points_per_sec(recognizer, workload, True, REPEATS)
        if again.points_per_sec > batched.points_per_sec:
            batched = again
        speedup = batched.points_per_sec / sequential.points_per_sec

    write_report(
        "serve_throughput",
        "Serving-layer throughput, 256 concurrent sessions "
        f"(notes family, best of {REPEATS})\n"
        f"{batched.summary()}\n"
        f"{sequential.summary()}\n"
        f"speedup: {speedup:.2f}x (decision streams identical)",
    )
    write_bench_json(
        "serve",
        params={
            "family": "notes",
            "clients": CLIENTS,
            "gestures_per_client": GESTURES_PER_CLIENT,
            "repeats": REPEATS,
            "dwell_every": 0,
            "seed": 5,
        },
        results={
            "batched_points_per_sec": round(batched.points_per_sec, 1),
            "sequential_points_per_sec": round(sequential.points_per_sec, 1),
            "speedup": round(speedup, 3),
            "batched_p50_us": round(batched.p50_us, 3),
            "batched_p99_us": round(batched.p99_us, 3),
            "sequential_p50_us": round(sequential.p50_us, 3),
            "sequential_p99_us": round(sequential.p99_us, 3),
            "points": batched.points,
            "decisions": batched.decisions,
        },
    )
    assert batched.decisions == sequential.decisions
    assert batched.errors == sequential.errors == 0
    assert speedup >= 3.0, (
        f"batched {batched.points_per_sec:,.0f} pts/s vs "
        f"sequential {sequential.points_per_sec:,.0f} pts/s "
        f"= {speedup:.2f}x, expected >= 3x"
    )
