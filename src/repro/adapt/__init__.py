"""Per-user online adaptation: harvest, retrain, shadow-eval, hot-swap.

The personalization loop closes the gap the paper leaves open between
*training* (§4, offline, one classifier for everyone) and *use* (§5,
online, one particular human's hand):

1. :class:`AdaptStore` **harvests** labelled examples per user from the
   serving traffic journal, the quality trace, and explicit corrections;
2. :class:`AdaptPipeline` **retrains** a per-user candidate by folding
   those examples into the base model's training set — incremental via
   the shared stage cache, yet bit-identical to batch-training on the
   combined set;
3. :func:`shadow_eval` **replays** the user's strokes through live and
   candidate models and issues a byte-stable promotion verdict — never
   promote on a tie or regression;
4. the serving layer **hot-swaps** the promoted model at a tick barrier
   (``SessionPool.swap_model`` / the ``swap`` protocol op), pinning
   in-flight sessions to the model they started with.

Each step is deterministic, so the whole loop is auditable end to end:
same journals + same base ⇒ same candidate hash, same report bytes,
same verdict.
"""

from .harvest import AdaptStore, harvest_hash
from .retrain import AdaptPipeline, AdaptRunResult
from .shadow import report_hash, shadow_eval

__all__ = [
    "AdaptPipeline",
    "AdaptRunResult",
    "AdaptStore",
    "harvest_hash",
    "report_hash",
    "shadow_eval",
]
