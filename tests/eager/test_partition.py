"""Unit tests for complete/incomplete labelling and the 2C partition
(paper §4.4-4.5, figures 5 and 6)."""

import pytest

from repro.eager import (
    class_of_set,
    complete_set_name,
    compute_move_threshold,
    incomplete_set_name,
    is_complete_set,
    label_examples,
    move_accidentally_complete,
    partition_subgestures,
)
from repro.recognizer import GestureClassifier


@pytest.fixture(scope="module")
def ud_setup(ud_generator):
    """The figures 5-7 setting: U and D classes, labelled subgestures."""
    train = ud_generator.generate_strokes(15)
    classifier = GestureClassifier.train(train)
    labelled = label_examples(classifier, train)
    return classifier, train, labelled


class TestSetNames:
    def test_complete_set_name(self):
        assert complete_set_name("rect") == "C:rect"

    def test_incomplete_set_name(self):
        assert incomplete_set_name("rect") == "I:rect"

    def test_is_complete_set(self):
        assert is_complete_set("C:rect")
        assert not is_complete_set("I:rect")

    def test_class_of_set(self):
        assert class_of_set("C:rect") == "rect"
        assert class_of_set("I:rotate-scale") == "rotate-scale"

    def test_class_of_set_rejects_garbage(self):
        with pytest.raises(ValueError):
            class_of_set("rect")
        with pytest.raises(ValueError):
            class_of_set("C:")


class TestLabelling:
    def test_every_example_labelled(self, ud_setup):
        _, train, labelled = ud_setup
        total_examples = sum(len(v) for v in train.values())
        assert len(labelled) == total_examples

    def test_subgesture_counts(self, ud_setup):
        _, _, labelled = ud_setup
        for example in labelled:
            expected = len(example.stroke) - 3 + 1  # MIN_PREFIX_POINTS = 3
            assert len(example.subgestures) == max(expected, 1)

    def test_full_gesture_of_correct_example_is_complete(self, ud_setup):
        classifier, _, labelled = ud_setup
        for example in labelled:
            last = example.subgestures[-1]
            if last.predicted == example.true_class:
                assert last.complete

    def test_completeness_is_suffix_closed(self, ud_setup):
        # Once complete, all larger subgestures are complete (the §4.4
        # definition quantifies over all larger prefixes).
        _, _, labelled = ud_setup
        for example in labelled:
            seen_complete = False
            for sub in example.subgestures:
                if seen_complete:
                    assert sub.complete, "completeness must be suffix-closed"
                seen_complete = seen_complete or sub.complete

    def test_complete_subgestures_are_classified_as_true_class(self, ud_setup):
        _, _, labelled = ud_setup
        for example in labelled:
            for sub in example.subgestures:
                if sub.complete:
                    assert sub.predicted == example.true_class

    def test_early_prefixes_of_u_and_d_agree(self, ud_setup):
        # U and D share a rightward first segment, so their 3-point
        # prefixes should be classified the same way (whichever way).
        _, _, labelled = ud_setup
        first_labels = {
            example.true_class: example.subgestures[0].predicted
            for example in labelled
        }
        # Both share a prefix; a single class should dominate early
        # prefixes across both (can't assert which one).
        assert len(set(first_labels.values())) == 1

    def test_label_string_shape(self, ud_setup):
        _, _, labelled = ud_setup
        example = labelled[0]
        s = example.label_string()
        assert len(s) == len(example.subgestures)
        assert s[-1].isupper() or s[-1].islower()


class TestPartition:
    def test_partition_has_2c_sets(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        assert set(partition.set_names) == {"C:U", "I:U", "C:D", "I:D"}

    def test_every_subgesture_lands_in_one_set(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        total_subs = sum(len(e.subgestures) for e in labelled)
        assert sum(partition.counts().values()) == total_subs

    def test_complete_sets_contain_only_complete(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        for name, subs in partition.sets.items():
            for sub in subs:
                assert sub.complete == is_complete_set(name)

    def test_incomplete_set_keyed_by_prediction(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        for name, subs in partition.sets.items():
            if is_complete_set(name):
                continue
            for sub in subs:
                assert sub.predicted == class_of_set(name)

    def test_mean_of_empty_set_raises(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        partition.sets["C:empty"] = []
        with pytest.raises(ValueError):
            partition.mean_of("C:empty")


class TestMoveAccidentallyComplete:
    def test_threshold_is_positive_for_ud(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        threshold = compute_move_threshold(
            classifier, partition, classifier.metric
        )
        assert threshold > 0.0

    def test_moves_happen_in_the_ud_example(self, ud_setup):
        # The paper's figure 6: the horizontal-run subgestures of D that
        # happened to classify as D get moved to incomplete sets.
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        threshold = compute_move_threshold(
            classifier, partition, classifier.metric
        )
        before = {
            name: len(subs)
            for name, subs in partition.sets.items()
            if is_complete_set(name)
        }
        moved = move_accidentally_complete(
            partition, classifier.metric, threshold
        )
        after = {
            name: len(subs)
            for name, subs in partition.sets.items()
            if is_complete_set(name)
        }
        assert moved > 0
        assert sum(after.values()) == sum(before.values()) - moved

    def test_moved_subgestures_marked_incomplete(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        threshold = compute_move_threshold(
            classifier, partition, classifier.metric
        )
        move_accidentally_complete(partition, classifier.metric, threshold)
        for name, subs in partition.sets.items():
            if not is_complete_set(name):
                assert all(not sub.complete for sub in subs)

    def test_prefix_closure_of_moves(self, ud_setup):
        # If g[i] moved, every smaller complete prefix of g moved too:
        # the remaining complete subgestures of each example form a
        # contiguous tail.
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        threshold = compute_move_threshold(
            classifier, partition, classifier.metric
        )
        move_accidentally_complete(partition, classifier.metric, threshold)
        remaining: dict[int, list[int]] = {}
        for name, subs in partition.sets.items():
            if is_complete_set(name):
                for sub in subs:
                    remaining.setdefault(sub.example_id, []).append(sub.length)
        for example in labelled:
            lengths = sorted(remaining.get(example.example_id, []))
            if lengths:
                max_length = example.subgestures[-1].length
                expected = list(range(lengths[0], max_length + 1))
                assert lengths == expected

    def test_zero_threshold_moves_nothing(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        assert move_accidentally_complete(partition, classifier.metric, 0.0) == 0

    def test_huge_threshold_moves_everything(self, ud_setup):
        classifier, _, labelled = ud_setup
        partition = partition_subgestures(labelled, classifier.class_names)
        move_accidentally_complete(partition, classifier.metric, 1e9)
        for name, subs in partition.sets.items():
            if is_complete_set(name):
                assert subs == []
