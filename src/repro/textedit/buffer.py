"""A text buffer with character-cell geometry.

The paper's motivating example (figure 1) is a proofreader's *move text*
gesture: circle some characters, and the tail of the gesture says where
they go.  §1 argues the right feedback during the manipulation phase is
"a text cursor, dragged by the mouse but snapping to legal destinations
for the text".  This buffer provides the substrate: fixed-pitch
character cells, position↔coordinate mapping, snapping, and the
extract/insert operations the move gesture's semantics perform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import BoundingBox, Stroke, polygon_contains
from ..mvc import Model

__all__ = ["TextPosition", "TextBuffer", "CHAR_WIDTH", "LINE_HEIGHT"]

CHAR_WIDTH = 8.0
LINE_HEIGHT = 16.0


@dataclass(frozen=True, order=True)
class TextPosition:
    """A caret position: between-characters slot ``col`` on ``line``."""

    line: int
    col: int


class TextBuffer(Model):
    """Lines of text laid out on a fixed character grid."""

    def __init__(self, text: str = "", origin: tuple[float, float] = (0.0, 0.0)):
        super().__init__()
        self.lines: list[str] = text.split("\n") if text else [""]
        self.origin = origin

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    # -- geometry ----------------------------------------------------------

    def position_to_xy(self, pos: TextPosition) -> tuple[float, float]:
        """Top-left corner of the caret slot at ``pos``."""
        ox, oy = self.origin
        return (ox + pos.col * CHAR_WIDTH, oy + pos.line * LINE_HEIGHT)

    def char_center(self, line: int, col: int) -> tuple[float, float]:
        """Center of the character cell at (line, col)."""
        ox, oy = self.origin
        return (
            ox + (col + 0.5) * CHAR_WIDTH,
            oy + (line + 0.5) * LINE_HEIGHT,
        )

    def bounds(self) -> BoundingBox:
        ox, oy = self.origin
        widest = max((len(line) for line in self.lines), default=0)
        return BoundingBox(
            ox,
            oy,
            ox + max(widest, 1) * CHAR_WIDTH,
            oy + len(self.lines) * LINE_HEIGHT,
        )

    # -- snapping (the §1 cursor) ----------------------------------------------

    def legal_positions(self) -> list[TextPosition]:
        """Every caret slot in the buffer."""
        return [
            TextPosition(line, col)
            for line, content in enumerate(self.lines)
            for col in range(len(content) + 1)
        ]

    def snap(self, x: float, y: float) -> TextPosition:
        """The legal caret slot nearest to ``(x, y)``.

        This is what the paper's snapping text cursor displays during
        the manipulation phase: however the mouse wanders, the cursor
        sits on a legal destination.
        """
        ox, oy = self.origin
        line = round((y - oy - LINE_HEIGHT / 2) / LINE_HEIGHT)
        line = min(max(line, 0), len(self.lines) - 1)
        col = round((x - ox) / CHAR_WIDTH)
        col = min(max(col, 0), len(self.lines[line]))
        return TextPosition(line, col)

    # -- selection by circling gesture -------------------------------------------

    def chars_enclosed_by(self, stroke: Stroke) -> list[tuple[int, int]]:
        """(line, col) of every character whose cell center the circling
        gesture encloses."""
        enclosed = []
        for line, content in enumerate(self.lines):
            for col in range(len(content)):
                cx, cy = self.char_center(line, col)
                if polygon_contains(stroke, cx, cy):
                    enclosed.append((line, col))
        return enclosed

    def span_enclosed_by(self, stroke: Stroke) -> tuple[int, int, int] | None:
        """A contiguous single-line span (line, col_start, col_end_excl)
        covering the enclosed characters, or None if nothing is circled.

        The proofreader's mark circles a run of characters on one line;
        if cells on several lines are caught, the line with the most
        enclosed characters wins.
        """
        enclosed = self.chars_enclosed_by(stroke)
        if not enclosed:
            return None
        by_line: dict[int, list[int]] = {}
        for line, col in enclosed:
            by_line.setdefault(line, []).append(col)
        line = max(by_line, key=lambda l: len(by_line[l]))
        cols = by_line[line]
        return (line, min(cols), max(cols) + 1)

    # -- editing operations -------------------------------------------------------

    def extract(self, line: int, col_start: int, col_end: int) -> str:
        """Remove and return ``lines[line][col_start:col_end]``."""
        content = self.lines[line]
        if not (0 <= col_start <= col_end <= len(content)):
            raise ValueError(
                f"span [{col_start}:{col_end}] out of range on line {line}"
            )
        removed = content[col_start:col_end]
        self.lines[line] = content[:col_start] + content[col_end:]
        self.changed()
        return removed

    def insert(self, pos: TextPosition, text: str) -> None:
        """Insert ``text`` at a caret slot (single-line text only)."""
        if "\n" in text:
            raise ValueError("multi-line insertion is not supported")
        content = self.lines[pos.line]
        col = min(max(pos.col, 0), len(content))
        self.lines[pos.line] = content[:col] + text + content[col:]
        self.changed()

    def move_span(
        self, line: int, col_start: int, col_end: int, dest: TextPosition
    ) -> TextPosition:
        """The move-text operation: extract a span, insert at ``dest``.

        Returns the (possibly shifted) insertion position actually used —
        removing text before the destination on the same line shifts the
        destination left.
        """
        text = self.lines[line][col_start:col_end]
        dest_col = dest.col
        if dest.line == line and dest_col >= col_end:
            dest_col -= col_end - col_start
        elif dest.line == line and col_start < dest_col < col_end:
            dest_col = col_start  # destination inside the span: no-op move
        self.extract(line, col_start, col_end)
        target = TextPosition(dest.line, dest_col)
        self.insert(target, text)
        return target
