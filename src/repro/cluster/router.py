"""The cluster front door: one address, N workers, zero new semantics.

The router speaks the exact :mod:`repro.serve.protocol` NDJSON dialect
on its client side and is itself a plain client on its worker side, so
neither end can tell the cluster apart from a single
:class:`~repro.serve.GestureServer` — which is the point: routed
decisions are *byte-identical* to a single-pool run.

Mechanics:

* every session key (``client:stroke``) is consistent-hashed onto a
  shard (:class:`~repro.cluster.ring.HashRing`) and stays there —
  sticky routing, so one session's ops never interleave across workers;
* ``tick``/``sweep`` are broadcast to every live worker: all shards
  share one virtual timeline, exactly as all sessions of a single pool
  share one clock.  Sweeps are additionally journaled per shard (a
  worker can die before processing one) and pruned once no live
  journal entry precedes them;
* every routed op is journaled per session with lazy clock markers
  (:mod:`repro.cluster.journal`); when the supervisor restarts a
  crashed worker, the router replays the journals of that shard's live
  sessions in original global order, suppresses the replies it had
  already forwarded (by count — replay is deterministic, so the prefix
  is bit-equal), and forwards the rest.  Clients see a complete,
  duplicate-free, byte-identical decision stream across a crash;
* ``stats`` fans out to every live worker and the per-worker metric
  snapshots are merged (:func:`repro.obs.merge_snapshots`) together
  with the router's own ``cluster.*`` registry into one fleet-wide
  reply;
* ``swap`` is resolved against the router's registry — the version is
  *pinned* at routing time, so a replay after the registry's latest
  moved applies the same model — then broadcast to every worker (a
  user's sessions can land on any shard) with the user rewritten to
  ``client:user``, mirroring stroke namespacing.  Swaps are journaled
  per shard in full (never pruned — they are rare and bind *future*
  sessions, so no live-session floor applies) and re-applied on crash
  replay; re-application is idempotent because the line carries the
  pinned version.  The router synthesizes exactly one ack itself and
  drops the N worker acks, keeping the client's stream identical to a
  single server's.

The router accepts three admin ops beyond the serve protocol:
``{"op": "cluster"}`` returns shard states,
``{"op": "drain", "shard": ...}`` starts a graceful drain (new sessions
spill to the ring successor; live sessions *migrate* off — see below —
so the shard retires immediately, never evicting anyone), and
``{"op": "scale", "workers": n}`` asks the harness to grow or shrink
the fleet to ``n`` workers.

Live migration reuses the crash-replay machinery against a *planned*
move: the migrating session's journal (ops, clock markers, and a
one-shot ``pin`` carrying the model it bound at open) is replayed into
the destination via the normal worker hop, already-forwarded replies
are suppressed by count, a ``release`` tells the source to forget the
session (stale in-flight replies are dropped until its ack), and the
record is atomically re-pointed.  ``migrate_off`` empties a shard;
``rebalance`` migrates exactly the sessions a ring change moves
(:meth:`HashRing.plan_rebalance` bounds that set).

Known limit: a record whose very first ``down`` was answered with a
``pool full`` error is dropped on that reply, but an error reply lost
to a crash *and* never re-derivable (the key never had a live session)
is at-most-once.  Session decisions — the recognition stream — are
exactly-once.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from contextlib import suppress
from time import perf_counter

from ..serve import DEFAULT_MAX_LINE, LineReader
from ..serve.framing import (
    DEFAULT_MAX_FRAME,
    FRAME_MAGIC,
    FrameReader,
    encode_hello,
    encode_frames,
    negotiate,
)
from ..serve.protocol import (
    ProtocolError,
    decode_payload,
    encode_error,
    encode_stats,
    encode_swap,
)
from .fastpath import OP_LINE, splice_reply
from .journal import SessionRecord, replay_lines
from .ring import HashRing

__all__ = ["Router"]

_NEG_INF = float("-inf")

# Error reasons that prove the worker holds no session for the key, so
# the router's record (and journal) can be dropped with it.
_GONE_REASONS = ("unknown stroke", "pool full")

# Migration freeze windows are sub-millisecond router work, far below
# the serve-latency decade ladder — they get their own bucket ladder.
_MIGRATION_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    1.0,
)


class _Mailbox:
    """A single-consumer list mailbox for the per-op hot path.

    ``put_nowait`` is a list append (plus one Event set when the list
    was empty) — several times cheaper than ``asyncio.Queue``'s
    put/get machinery — and ``take()`` hands the consumer *everything*
    queued in one call, which is exactly the coalescing the connection
    writers want anyway.  Single-threaded asyncio only: no locks.
    """

    __slots__ = ("items", "event")

    def __init__(self):
        self.items: list = []
        # Public: the batch router inlines put_nowait (append + set).
        self.event = asyncio.Event()

    def put_nowait(self, item) -> None:
        self.items.append(item)
        if len(self.items) == 1:
            self.event.set()

    async def take(self) -> list:
        while not self.items:
            self.event.clear()
            await self.event.wait()
        batch = self.items
        self.items = []
        self.event.clear()
        return batch


class _WorkerLink:
    """The router's connection (and outbound queue) to one worker."""

    __slots__ = (
        "shard",
        "state",
        "ups",
        "mode",
        "queue",
        "writer",
        "reader_task",
        "writer_task",
        "pending_stats",
        "extras",
        "swaps",
        "released",
    )

    def __init__(self, shard: str):
        self.shard = shard
        self.state = "down"
        self.ups = 0
        self.mode = "ndjson"  # per-link framing, renegotiated each connect
        self.queue: _Mailbox | None = None
        self.writer = None
        self.reader_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        self.pending_stats: deque = deque()
        self.extras: list[tuple[int, str]] = []  # shard-global journal
        # Swap journal, kept separate from `extras`: sweeps are pruned
        # against the shard's oldest *live* session (and cleared when
        # none), but a swap binds sessions that do not exist yet, so it
        # must survive arbitrary idle gaps and replay on every restart.
        self.swaps: list[tuple[int, str]] = []
        # Keys migrated *off* this worker whose `release` is still in
        # flight: any reply for them is a stale pre-release copy (the
        # destination owns the byte stream now) and must be dropped.
        # Wire order makes the protocol exact: stale replies < released
        # ack < anything a later migrate-back replays.
        self.released: set[str] = set()


class _Client:
    """One accepted client connection."""

    __slots__ = ("id", "ns", "outbox", "limit", "closed", "seen")

    def __init__(self, cid: str, queue_size: int):
        self.id = cid
        self.ns = cid + ":"  # namespace prefix, built once per connection
        self.outbox = _Mailbox()
        self.limit = queue_size  # backpressure: beyond it, push refuses
        self.closed = False
        self.seen = False  # any line processed yet (hello negotiation)

    def push(self, line: str) -> bool:
        if len(self.outbox.items) >= self.limit:
            return False
        self.outbox.put_nowait(line)
        return True


class Router:
    """Route the serve protocol across a shard fleet."""

    def __init__(
        self,
        shards,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 1024,
        max_line: int = DEFAULT_MAX_LINE,
        max_frame: int = DEFAULT_MAX_FRAME,
        stats_timeout: float = 10.0,
        worker_framing: str = "lp1",
        metrics=None,
        registry=None,
    ):
        self.ring = HashRing(shards)
        # Model source for `swap` requests: a ModelRegistry, a registry
        # root path, or None (swaps rejected with an error reply).
        if registry is not None and not hasattr(registry, "load"):
            from ..serve.registry import ModelRegistry

            registry = ModelRegistry(registry)
        self.registry = registry
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.max_line = max_line
        self.max_frame = max_frame
        self.stats_timeout = stats_timeout
        # Framing attempted on the router→worker hop: "lp1" negotiates
        # length-prefixed frames per link (falling back to NDJSON when a
        # worker refuses — mixed fleets interoperate); "ndjson" never
        # negotiates.  The client hop always speaks NDJSON.
        if worker_framing not in ("ndjson", "lp1"):
            raise ValueError(f"unknown worker framing: {worker_framing!r}")
        self.worker_framing = worker_framing
        # Duck-typed: anything with .counter(name).inc(n) and .snapshot().
        self.metrics = metrics
        # Hot-loop counters, resolved once (the generic _count path pays
        # a dict lookup per call).
        if metrics is not None:
            self._ops_routed = metrics.counter("cluster.ops_routed")
            self._replies_forwarded = metrics.counter("cluster.replies_forwarded")
            self._replies_suppressed = metrics.counter("cluster.replies_suppressed")
            self._migration_seconds = metrics.histogram(
                "cluster.migration_seconds", bounds=_MIGRATION_BUCKETS
            )
        else:
            self._ops_routed = None
            self._replies_forwarded = None
            self._replies_suppressed = None
            self._migration_seconds = None
        # Data-plane busy time (client-side routing / worker-side reply
        # handling), excluding every await — the "router_s" half of the
        # benchmark's router/worker/transport breakdown.
        self._client_in_s = 0.0
        self._worker_in_s = 0.0
        # Ops routed since the last counter flush: the hot path bumps a
        # plain int and _handle_client folds it into the metrics counter
        # once per event batch (and before any stats fan-out reads it).
        self._ops_pending = 0
        self.links = {shard: _WorkerLink(shard) for shard in self.ring.shards}
        self.sessions: dict[str, SessionRecord] = {}
        self.draining: set[str] = set()
        self.retired: set[str] = set()
        self.drain_hook = None  # async (shard) -> None; wired by the harness
        self.scale_hook = None  # async (workers) -> None; wired by the harness
        self.supervisor_status = None  # () -> dict; wired by the harness
        # Every swap ever routed, as (seq, "client:user" prefix, pinned
        # label): a live migration must re-pin the model the session
        # bound at *open* — the destination's present-day assignments
        # have moved on, so replaying the down alone would bind the
        # wrong model.  Swaps are rare and never pruned (same contract
        # as the per-link swap journals).
        self._swap_history: list[tuple[int, str, str]] = []
        self._clients: dict[str, _Client] = {}
        self._next_client = 0
        self._seq = 0
        # The *broadcast* clock: the highest t the router has actually
        # broadcast to workers as a tick/sweep barrier.  Workers advance
        # their pool clocks only at barriers, so this — and only this —
        # is where every live worker's clock stands; journal markers and
        # the replay's trailing tick are taken from it.  Op timestamps
        # never move it: an op's own t reaches the worker on the op line
        # itself and is folded in at the next barrier, which replay
        # reproduces from the journaled op lines.
        self._clock = _NEG_INF
        # The broadcast clock's journal marker, encoded once per barrier
        # instead of once per journalled op (see SessionRecord.journal).
        self._clock_line: str | None = None
        # Sweeps ever broadcast (or force-sent): quiesce() loops until a
        # barrier round completes with this unchanged, because a sweep
        # racing a migration is the one thing replay cannot repair.
        self._sweeps_broadcast = 0
        self._server: asyncio.AbstractServer | None = None
        self._client_tasks: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        for task in list(self._client_tasks):
            with suppress(asyncio.CancelledError):
                await task
        for shard in self.links:
            self._mark_down(shard)

    # -- metrics -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    def _flush_op_count(self) -> None:
        if self._ops_pending:
            if self._ops_routed is not None:
                self._ops_routed.inc(self._ops_pending)
            self._ops_pending = 0

    # -- worker side ---------------------------------------------------------

    async def _negotiate_worker(self, reader, writer) -> str:
        """One hello round trip; returns the link's framing mode.

        The ack to an accepted ``lp1`` hello is itself the first lp1
        frame, so the first reply byte disambiguates: the frame magic
        means the worker switched; anything else is an NDJSON error
        line from a worker that refused (``--no-lp1``) or predates the
        framing — the link then stays NDJSON and everything still
        works, just slower.
        """
        writer.write((encode_hello("lp1") + "\n").encode())
        await writer.drain()
        first = await reader.readexactly(1)
        if first[0] == FRAME_MAGIC:
            length = int.from_bytes(await reader.readexactly(4), "big")
            payload = await reader.readexactly(length)
            ack = json.loads(payload)
            if ack.get("kind") == "hello" and ack.get("framing") == "lp1":
                return "lp1"
            raise ConnectionError(f"unexpected lp1 negotiation ack: {ack!r}")
        await reader.readline()  # the refusal's error line
        self._count("cluster.lp1_refused")
        return "ndjson"

    async def worker_up(self, shard: str, host: str, port: int) -> None:
        """Connect a (re)started worker and replay its shard's journals.

        Everything between framing negotiation and marking the link up
        is synchronous, so ops that arrive during the connect (or the
        negotiation round trip) are journaled and land in the replay,
        never double-sent.
        """
        reader, writer = await asyncio.open_connection(host, port)
        mode = "ndjson"
        if self.worker_framing == "lp1":
            try:
                mode = await self._negotiate_worker(reader, writer)
            except asyncio.IncompleteReadError:
                # The supervisor's retry loop catches OSError; a worker
                # dying mid-negotiation must look like any other failed
                # connect, not escape as EOFError.
                writer.close()
                raise ConnectionError(
                    "worker closed during framing negotiation"
                ) from None
        link = self.links[shard]
        link.mode = mode
        records = [r for r in self.sessions.values() if r.shard == shard]
        final_t = None if self._clock == _NEG_INF else self._clock
        lines = replay_lines(records, link.extras + link.swaps, final_t=final_t)
        for record in records:
            record.skip = record.delivered
        # link.extras is kept: this worker too can die before processing
        # a replayed sweep.  Stale entries are pruned as sweeps are
        # journaled (see _journal_sweep).
        link.queue = _Mailbox()  # stale pre-crash queue is discarded
        for line in lines:
            link.queue.put_nowait(line)
        link.writer = writer
        link.state = "up"
        link.ups += 1
        if link.ups > 1:
            self._count("cluster.worker_restarts")
            if lines:
                self._count("cluster.replays")
                self._count("cluster.replayed_lines", len(lines))
        loop = asyncio.get_running_loop()
        link.writer_task = loop.create_task(self._worker_writer(link, writer))
        link.reader_task = loop.create_task(self._worker_reader(link, reader))

    async def worker_down(self, shard: str) -> None:
        self._mark_down(shard)

    def _mark_down(self, shard: str) -> None:
        link = self.links[shard]
        if link.state != "up":
            return
        link.state = "down"
        current = asyncio.current_task()
        for task in (link.reader_task, link.writer_task):
            if task is not None and task is not current:
                task.cancel()
        link.reader_task = link.writer_task = None
        if link.writer is not None:
            link.writer.close()
            link.writer = None
        while link.pending_stats:  # unblock any stats fan-out in flight
            fut = link.pending_stats.popleft()
            if not fut.done():
                fut.set_result(None)
        # A dead worker holds no stale session copies: its replacement
        # starts empty, so nothing is left to drop.  Keeping entries
        # here could wrongly swallow replies if the key migrates back.
        link.released.clear()

    async def _worker_writer(self, link: _WorkerLink, writer) -> None:
        queue = link.queue
        lp1 = link.mode == "lp1"
        with suppress(ConnectionError, asyncio.CancelledError):
            while True:
                # Coalesce: everything already queued leaves in one
                # write() — one syscall per pump pass, not per op.
                batch = await queue.take()
                if lp1:
                    data = encode_frames(line.encode() for line in batch)
                else:
                    data = b"".join(line.encode() + b"\n" for line in batch)
                writer.write(data)
                await writer.drain()

    async def _worker_reader(self, link: _WorkerLink, reader) -> None:
        if link.mode == "lp1":
            frames = FrameReader(reader, self.max_frame)
        else:
            frames = LineReader(reader, self.max_line)
        try:
            eof = False
            while not eof:
                events = await frames.next_batch()
                t0 = perf_counter()
                for kind, raw in events:
                    if kind == "eof":
                        eof = True
                        break
                    if kind != "line":
                        # overflow/garbage/truncated: a worker never
                        # legitimately produces these; drop the event
                        # and keep the link.
                        self._count("cluster.worker_frame_errors")
                        continue
                    raw = raw.strip()
                    if not raw:
                        continue
                    self._on_worker_line(link, raw.decode())
                self._worker_in_s += perf_counter() - t0
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if link.state == "up":
                self._mark_down(link.shard)

    def _on_worker_line(self, link: _WorkerLink, raw: str) -> None:
        fast = splice_reply(raw)
        if fast is not None:
            # A canonical decision reply: kind, key, and the
            # un-namespaced line came straight off the bytes.
            kind, key, line = fast
            obj = None
            terminal = kind == "commit" or kind == "evict"
        else:
            obj = json.loads(raw)
            kind = obj.get("kind")
            if kind == "swap":
                # Every worker acks a broadcast swap; the router already
                # synthesized the single client-facing ack at routing time.
                self._count("cluster.swap_acks_dropped")
                return
            if kind == "stats":
                if link.pending_stats:
                    fut = link.pending_stats.popleft()
                    if not fut.done():
                        fut.set_result(obj)
                return
            if kind == "released":
                # The source worker confirmed a migration handoff: every
                # stale reply for the key has already arrived (wire
                # order), so stop dropping.
                link.released.discard(obj.get("stroke", ""))
                return
            key = obj.get("stroke", "")
            line = None  # encoded lazily: a suppressed replay never needs it
            terminal = kind in ("commit", "evict") or (
                kind == "error" and obj.get("reason") in _GONE_REASONS
            )
        if link.released and key in link.released:
            # A stale copy from a worker the session migrated off —
            # the destination's replay owns this byte stream now.
            self._count("cluster.stale_replies_dropped")
            return
        record = self.sessions.get(key)
        if record is not None and record.skip > 0:
            # A replayed reply the client already has: bit-equal to the
            # one forwarded before the crash, so drop it by count.
            record.skip -= 1
            if self._replies_suppressed is not None:
                self._replies_suppressed.inc(1)
            if terminal:
                self.sessions.pop(key, None)
            return
        client_id, _, stroke = key.partition(":")
        if line is None:
            obj["stroke"] = stroke  # un-namespace; dumps() restores the bytes
            line = json.dumps(obj)
        if record is not None:
            record.delivered += 1
            client_id = record.client
            if terminal:
                self.sessions.pop(key, None)
        client = self._clients.get(client_id)
        if client is not None and not client.closed:
            if not client.push(line):
                self._close_client(client)
        if self._replies_forwarded is not None:
            self._replies_forwarded.inc(1)

    # -- client side ---------------------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self._next_client += 1
        client = _Client(f"k{self._next_client}", self.queue_size)
        self._clients[client.id] = client
        task = asyncio.current_task()
        self._client_tasks.add(task)
        drain_task = asyncio.get_running_loop().create_task(
            self._client_writer(client, writer)
        )
        lines = LineReader(reader, self.max_line)
        try:
            while not client.closed:
                events = await lines.next_batch()
                if events[0][0] == "eof":
                    # next_batch never scans past an eof, so it is
                    # always the sole (first) event of its batch.
                    break
                t0 = perf_counter()
                start = 0
                while True:
                    # Routing is synchronous; only the rare ops that
                    # fan out (admin, stats) hand back an awaitable —
                    # kept outside the busy-time accounting, which
                    # measures data-plane work, not waits.
                    pending, start = self._route_batch(client, events, start)
                    if pending is None:
                        break
                    self._client_in_s += perf_counter() - t0
                    await pending
                    t0 = perf_counter()
                self._client_in_s += perf_counter() - t0
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._close_client(client)
            with suppress(asyncio.CancelledError):
                await drain_task
            writer.close()
            with suppress(ConnectionError):
                await writer.wait_closed()
            self._client_tasks.discard(task)

    async def _client_writer(self, client: _Client, writer) -> None:
        outbox = client.outbox
        with suppress(ConnectionError):
            closing = False
            while not closing:
                # Coalesce queued replies into one write() per wakeup.
                batch = await outbox.take()
                if batch[-1] is None:  # the common close: sentinel last
                    closing = True
                    batch.pop()
                elif None in batch:
                    closing = True
                    batch = batch[: batch.index(None)]
                if batch:
                    writer.write(b"".join(l.encode() + b"\n" for l in batch))
                    await writer.drain()

    def _close_client(self, client: _Client) -> None:
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.id, None)
        # The sentinel bypasses the backpressure limit: closing must
        # always be deliverable to the writer task.
        client.outbox.put_nowait(None)

    def _route_batch(self, client: _Client, events, start: int):
        """Route one read's worth of client lines, starting at ``start``.

        The canonical ``down``/``move``/``up`` shape takes the splice
        path inline: no dict is built, the ``client:`` namespace prefix
        is inserted at the matched offset, the journal append is the
        pre-encoded marker plus the spliced line, and every per-op
        ``self``/``client`` attribute read is hoisted into a local once
        per batch — at router rates the lookups alone are measurable.
        Anything else falls back to :meth:`_route_line` (with journal
        and clock state synced around the call), so validation outcomes
        and error bytes never depend on which path ran.

        Returns ``(pending, resume)``: ``pending`` is an awaitable only
        when a line fanned out (admin, stats) — the caller awaits it
        outside the busy window and re-enters at index ``resume``.
        """
        match = OP_LINE.match
        sessions = self.sessions
        links = self.links
        ns = client.ns
        cid = client.id
        seen = client.seen
        seq = self._seq
        clock = self._clock
        clock_line = self._clock_line
        ops = 0
        pending = None
        i = start
        n = len(events)
        while i < n:
            kind, bline = events[i]
            i += 1
            if kind != "line":  # overflow: the only other mid-batch kind
                if not client.push(
                    encode_error(f"line exceeds {self.max_line} bytes")
                ):
                    self._close_client(client)
                    break
                continue
            # bytes.strip() copies even when there is nothing to strip;
            # a canonical line starts with ``{`` and ends with ``}``.
            if not (bline and bline[0] == 123 and bline[-1] == 125):
                bline = bline.strip()
                if not bline:
                    continue
            line = bline.decode()
            m = match(line)
            if m is None:
                # Sync shared state around the legacy path: it journals
                # non-canonical ops (``_seq``) and a tick/sweep moves
                # the broadcast clock.
                self._seq = seq
                client.seen = seen
                pending = self._route_line(client, line)
                seq = self._seq
                clock = self._clock
                clock_line = self._clock_line
                seen = client.seen
                if pending is not None:
                    break
                continue
            seen = True
            stroke, ts = m.group(2, 3)
            key = ns + stroke
            record = sessions.get(key)
            if record is None:
                shard = self.ring.lookup(
                    key, skip=self.draining | self.retired
                )
                record = SessionRecord(key, cid, shard)
                sessions[key] = record
            vstart = m.start(2)
            forwarded = line[:vstart] + ns + line[vstart:]
            entries = record.entries
            if clock > record.clock_mark:
                entries.append((seq, clock_line))
                seq += 1
            entries.append((seq, forwarded))
            seq += 1
            t = float(ts)
            record.clock_mark = clock if clock > t else t
            link = links[record.shard]
            if link.state == "up":
                # _Mailbox.put_nowait, inlined.
                queue = link.queue
                items = queue.items
                items.append(forwarded)
                if len(items) == 1:
                    queue.event.set()
            ops += 1
        client.seen = seen
        self._seq = seq
        if ops:
            self._ops_pending += ops
        self._flush_op_count()
        return pending, i

    def _route_line(self, client: _Client, line: str):
        """Route one non-canonical client line the legacy way; returns
        an awaitable only for ops that fan out (admin, stats).

        Everything here decodes to a dict — including valid session ops
        in non-canonical form (compact separators, reordered keys),
        which are validated, re-encoded canonically, and journaled
        exactly as every op was before the splice path existed.
        """
        try:
            payload = json.loads(line)
        except ValueError as exc:
            client.seen = True
            client.push(encode_error(f"bad json: {exc}"))
            return None
        if isinstance(payload, dict):
            admin_op = payload.get("op")
            if admin_op in ("cluster", "drain", "scale"):
                client.seen = True
                return self._admin(client, payload)
            if admin_op == "hello":
                # The client hop stays NDJSON (the debuggable compat
                # path; lp1 runs router↔worker): an ndjson hello acks
                # as a capability probe, lp1 is refused, and the
                # connection continues either way.
                reply, _ = negotiate(
                    payload, first=not client.seen, allow_lp1=False
                )
                client.seen = True
                client.push(reply)
                return None
        client.seen = True
        try:
            request = decode_payload(payload)
        except ProtocolError as exc:
            client.push(encode_error(str(exc)))
            return None
        op = request.op
        if op == "release" or op == "pin":
            # Migration internals the router speaks to its *workers*;
            # from a client they could silently corrupt live sessions.
            client.push(
                encode_error(
                    f"internal op: {op}", stroke=request.stroke, t=request.t
                )
            )
            return None
        if op == "stats":
            return self._fleet_stats(client)
        if op == "swap":
            self._route_swap(client, request)
            return None
        if op == "tick":
            if request.t > self._clock:
                self._clock = request.t
                self._clock_line = json.dumps({"op": "tick", "t": self._clock})
            self._broadcast(line)
            self._count("cluster.ticks_broadcast")
            return None
        if op == "sweep":
            if request.t > self._clock:
                self._clock = request.t
                self._clock_line = json.dumps({"op": "tick", "t": self._clock})
            self._sweeps_broadcast += 1
            self._broadcast(line)
            # A worker can die with the sweep queued or sent but not yet
            # processed — death detection is asynchronous, so "up at
            # routing time" proves nothing — and a lost sweep would mean
            # the replayed worker never runs the eviction every live
            # worker ran.  So the sweep is journaled (with its clock
            # marker) for *every* shard that could still be replayed.
            for link in self.links.values():
                if link.shard not in self.retired:
                    self._journal_sweep(link, line)
            return None
        # down / move / up in non-canonical form: sticky-route, journal,
        # forward — via re-encode, exactly as every op was before the
        # splice path existed.  The journal marker carries the broadcast
        # clock — the barriers the worker received before this op; the
        # op's own t is carried by the op line itself, live and in
        # replay alike.
        key = f"{client.id}:{request.stroke}"
        record = self.sessions.get(key)
        if record is None:
            shard = self.ring.lookup(key, skip=self.draining | self.retired)
            record = SessionRecord(key, client.id, shard)
            self.sessions[key] = record
        payload["stroke"] = key
        forwarded = json.dumps(payload)
        self._seq = record.journal(
            self._seq,
            forwarded,
            clock=self._clock,
            t=request.t,
            clock_line=self._clock_line,
        )
        link = self.links[record.shard]
        if link.state == "up":
            link.queue.put_nowait(forwarded)
        self._ops_pending += 1
        return None

    def _broadcast(self, line: str) -> None:
        for link in self.links.values():
            if link.state == "up":
                link.queue.put_nowait(line)

    def _route_swap(self, client: _Client, request) -> None:
        """Resolve, pin, broadcast, and journal one swap request.

        The user is rewritten to ``client:user`` so it prefixes the
        worker-side session keys exactly as stroke namespacing composes
        them (the worker's pool keys are ``chan/client:stroke``).  The
        version is resolved here — against the router's registry, once
        — and the *pinned* ``name@version`` is what workers receive and
        what the journal replays, so a crash replay after a later
        publish re-applies the same bits.
        """
        if self.registry is None:
            client.push(
                encode_error("swap unsupported: no registry", t=request.t)
            )
            return
        name, _, version = request.model.partition("@")
        try:
            if version:
                self.registry.path_of(name, version)
            else:
                version = self.registry.latest_version(name)
        except (KeyError, OSError) as exc:
            client.push(encode_error(f"swap failed: {exc}", t=request.t))
            return
        pinned = f"{name}@{version}"
        user_prefix = f"{client.id}:{request.user}"
        line = json.dumps(
            {
                "op": "swap",
                "user": user_prefix,
                "model": pinned,
                "t": request.t,
            }
        )
        self._broadcast(line)
        # One history entry at the base sequence: per-link journal seqs
        # are consecutive (no session line lands between them), so any
        # record entry is entirely before or entirely after this swap —
        # comparing against the base is exact.
        self._swap_history.append((self._seq, user_prefix, pinned))
        for link in self.links.values():
            if link.shard not in self.retired:
                link.swaps.append((self._seq, line))
                self._seq += 1
        client.push(encode_swap(request.user, pinned, request.t))
        self._count("cluster.swaps_routed")

    def _journal_sweep(self, link: _WorkerLink, line: str) -> None:
        """Journal one sweep (with clock marker) into a shard's extras.

        Old entries are pruned first: a sweep whose sequence number
        precedes every live journal entry of the shard would replay
        against sessions that no longer exist (evicted or committed
        sessions' journals were dropped on their terminal replies), so
        it can no longer change anything.  That bounds extras growth to
        the sweeps broadcast since the shard's oldest live session
        opened; with no live sessions at all, nothing is journaled.
        """
        floor: int | None = None
        for record in self.sessions.values():
            if record.shard == link.shard and record.entries:
                first = record.entries[0][0]
                if floor is None or first < floor:
                    floor = first
        if floor is None:
            link.extras = []
            return
        link.extras = [e for e in link.extras if e[0] >= floor]
        if self._clock != _NEG_INF:
            # _clock_line is always current here: it is re-encoded at
            # every barrier that moves _clock off -inf.
            link.extras.append((self._seq, self._clock_line))
            self._seq += 1
        link.extras.append((self._seq, line))
        self._seq += 1

    def force_sweep(self, shard: str, max_idle: float = 0.0) -> None:
        """Send a targeted ``sweep`` to one shard — the drain-deadline
        hammer.  Journaled exactly like a broadcast sweep, so a crash
        between send and processing still replays the eviction."""
        link = self.links[shard]
        line = json.dumps({"op": "sweep", "max_idle": max_idle})
        self._sweeps_broadcast += 1
        if link.state == "up":
            link.queue.put_nowait(line)
        if shard not in self.retired:
            self._journal_sweep(link, line)

    # -- live migration ------------------------------------------------------

    async def quiesce(self) -> None:
        """The migration freeze: wait until every live worker has
        answered everything queued to it so far.

        A ``stats`` probe is enqueued per link *after* whatever is
        already queued, so each worker's reply proves it processed the
        lot — in particular, every broadcast sweep's evictions have
        come back and their terminal records are dropped.  Sweeps are
        the one op replay cannot repair: a pool-wide ``evict_idle``
        re-run on a warm destination could evict bystander sessions, so
        a migration must never leave a sweep's outcome for a session
        unresolved.  The loop re-runs the round whenever a new sweep
        was broadcast (or a worker (re)connected — its journal replay
        re-enqueues sweeps) while a round was in flight; once it
        returns, the caller's continuation runs in the same synchronous
        task step, so a migration started immediately after cannot race
        anything.
        """
        loop = asyncio.get_running_loop()
        while True:
            mark = (
                self._sweeps_broadcast,
                sum(link.ups for link in self.links.values()),
            )
            futures = []
            for link in self.links.values():
                if link.state == "up":
                    fut = loop.create_future()
                    link.pending_stats.append(fut)
                    link.queue.put_nowait('{"op": "stats"}')
                    futures.append(fut)
            if futures:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*futures), timeout=self.stats_timeout
                    )
                except asyncio.TimeoutError:
                    pass
            if mark == (
                self._sweeps_broadcast,
                sum(link.ups for link in self.links.values()),
            ):
                return

    def _pinned_model(self, record: SessionRecord) -> str | None:
        """The model label ``record``'s session bound when it opened.

        Scans the swap history for entries routed before the session's
        first journal entry, matching the pool's own resolution rule —
        longest ``client:user`` prefix wins, last write per prefix wins.
        Returns ``""`` when swaps touching the key exist but none
        preceded the open (the session bound the default model, which a
        warm destination would *not* give it), and ``None`` when no
        swap has ever matched the key — then no pin is needed at all.
        """
        history = self._swap_history
        if not history:
            return None
        key = record.key
        first = record.entries[0][0] if record.entries else self._seq
        matched = False
        best_len = -1
        best = ""
        for seq, prefix, label in history:
            if not key.startswith(prefix):
                continue
            matched = True
            if seq >= first:
                continue
            n = len(prefix)
            # >= so a later swap on the same prefix overwrites, while a
            # later swap on a *shorter* prefix never shadows a longer
            # match — exactly SessionPool's assignment semantics.
            if n >= best_len:
                best_len = n
                best = label
        if not matched:
            return None
        return best

    def _migrate(self, record: SessionRecord, dest: str) -> None:
        """Move one live session to ``dest`` — atomically, byte-exactly.

        This is crash replay aimed at a planned move, and it is fully
        synchronous: between reading the record and re-pointing it, no
        reply can interleave, so the suppression count is exact.  The
        destination replays the session's journal (plus a one-shot
        ``pin`` so it re-binds the model the session opened under, not
        the destination's present-day assignment) and suppresses the
        first ``delivered`` replies; the source gets a ``release`` and
        any reply it had in flight is dropped until the release ack.
        """
        src = record.shard
        if dest == src:
            return
        t0 = perf_counter()
        extras: list[tuple[int, str]] = []
        pinned = self._pinned_model(record)
        if pinned is not None and record.entries:
            # One seq below the first entry: the pin lands before the
            # session's down (and before its clock marker, which is
            # harmless — pins do not interact with the clock).
            extras.append(
                (
                    record.entries[0][0] - 1,
                    json.dumps(
                        {"op": "pin", "stroke": record.key, "model": pinned}
                    ),
                )
            )
        final_t = None if self._clock == _NEG_INF else self._clock
        lines = replay_lines([record], extras, final_t=final_t)
        record.skip = record.delivered
        record.shard = dest
        dest_link = self.links[dest]
        if dest_link.state == "up":
            for line in lines:
                dest_link.queue.put_nowait(line)
        # A down destination is fine: the record now belongs to it, so
        # its next worker_up cold-replays the journal — and a cold
        # replay needs no pin (the shard's full swap journal re-derives
        # the binding in original order).
        src_link = self.links[src]
        if src_link.state == "up":
            src_link.queue.put_nowait(
                json.dumps({"op": "release", "stroke": record.key})
            )
            src_link.released.add(record.key)
        # A down source needs nothing: its replacement starts empty and
        # its replay skips this record (record.shard is dest now).
        self._count("cluster.migrations")
        if self._migration_seconds is not None:
            self._migration_seconds.observe(perf_counter() - t0)

    def migrate_off(self, shard: str) -> None:
        """Migrate every live session off ``shard`` (drain's data move).

        Destinations follow the ring's skip spill — identical to where
        each key would have landed had the shard never existed, so a
        later ``retire`` (shard stays in the ring, lookups skip it)
        changes no route.
        """
        skip = self.draining | self.retired | {shard}
        for record in list(self.sessions.values()):
            if record.shard == shard:
                self._migrate(record, self.ring.lookup(record.key, skip=skip))

    def rebalance(self, new_ring: HashRing) -> None:
        """Adopt ``new_ring`` and migrate exactly the sessions it moves.

        Each record's ``shard`` is its *effective* route (spills
        included), so comparing it against the new ring's effective
        lookup moves the provably-minimal session set — the same set
        :meth:`HashRing.plan_rebalance` plans.
        """
        self.ring = new_ring
        shards = set(new_ring.shards)
        skip = frozenset(s for s in self.draining | self.retired if s in shards)
        for record in list(self.sessions.values()):
            dest = new_ring.lookup(record.key, skip=skip)
            if dest != record.shard:
                self._migrate(record, dest)

    def add_shard(self, shard: str) -> None:
        """Register a joining worker's link (the ring is untouched until
        :meth:`rebalance` — callers add the shard there once the worker
        is connected, so sessions never migrate toward a cold gap).

        The new link inherits the fleet's swap journal: swaps bind
        sessions that do not exist yet, and every non-retired link
        carries the identical journal, so any one of them seeds it.
        """
        if shard in self.links:
            raise ValueError(f"shard already known: {shard}")
        link = _WorkerLink(shard)
        for other in self.links.values():
            if other.shard not in self.retired:
                link.swaps = list(other.swaps)
                break
        self.links[shard] = link

    def load_sample(self) -> dict:
        """A synchronous load snapshot for the autoscaler: live shard
        count, session totals, and the deepest outbound worker queue."""
        live = [
            s
            for s in self.links
            if s not in self.retired and s not in self.draining
        ]
        max_queue = 0
        for shard in live:
            queue = self.links[shard].queue
            if queue is not None and len(queue.items) > max_queue:
                max_queue = len(queue.items)
        sessions = len(self.sessions)
        return {
            "shards": len(live),
            "sessions": sessions,
            "sessions_per_shard": sessions / max(1, len(live)),
            "max_queue_depth": max_queue,
        }

    # -- stats and admin -----------------------------------------------------

    async def _fleet_stats(self, client: _Client) -> None:
        loop = asyncio.get_running_loop()
        futures = []
        for link in self.links.values():
            if link.state == "up":
                fut = loop.create_future()
                link.pending_stats.append(fut)
                link.queue.put_nowait('{"op": "stats"}')
                futures.append(fut)
        replies: list = []
        if futures:
            try:
                replies = await asyncio.wait_for(
                    asyncio.gather(*futures), timeout=self.stats_timeout
                )
            except asyncio.TimeoutError:
                replies = [f.result() for f in futures if f.done() and not f.cancelled()]
        stats = [r for r in replies if isinstance(r, dict)]
        snapshots = [s.get("metrics") for s in stats]
        if self.metrics is not None:
            snapshots.append(self.metrics.snapshot())
        snapshots = [s for s in snapshots if s is not None]
        if snapshots:
            from ..obs import merge_snapshots

            merged = merge_snapshots(snapshots)
        else:
            merged = None
        line = encode_stats(
            merged,
            t=self._clock if self._clock != _NEG_INF else 0.0,
            sessions=sum(s.get("sessions", 0) for s in stats),
            channels=len(self._clients),
        )
        payload = json.loads(line)
        payload["cluster"] = self.status()
        # Fleet-wide pump busy time: the "worker_s" half of the
        # benchmark's router/worker/transport breakdown.
        payload["cluster"]["worker_busy_s"] = round(
            sum(s.get("busy_s", 0.0) for s in stats), 6
        )
        if not client.closed and not client.push(json.dumps(payload)):
            self._close_client(client)

    def status(self) -> dict:
        shards = {}
        supervisor = self.supervisor_status() if self.supervisor_status else {}
        # Iterate the links, not the ring: a joining shard has a link
        # before its first rebalance puts it on the ring.
        for shard, link in self.links.items():
            info = {
                "state": link.state,
                "ups": link.ups,
                "sessions": sum(
                    1 for r in self.sessions.values() if r.shard == shard
                ),
                "draining": shard in self.draining,
                "retired": shard in self.retired,
            }
            info.update(supervisor.get(shard, {}))
            info["framing"] = link.mode
            shards[shard] = info
        return {
            "shards": shards,
            "sessions": len(self.sessions),
            "router": {
                "client_in_s": round(self._client_in_s, 6),
                "worker_in_s": round(self._worker_in_s, 6),
                "busy_s": round(self._client_in_s + self._worker_in_s, 6),
            },
        }

    async def _admin(self, client: _Client, payload: dict) -> None:
        if payload["op"] == "cluster":
            reply = {"kind": "cluster"}
            reply.update(self.status())
            client.push(json.dumps(reply))
            return
        if payload["op"] == "scale":
            workers = payload.get("workers")
            if (
                isinstance(workers, bool)
                or not isinstance(workers, int)
                or workers < 1
            ):
                client.push(encode_error("scale needs a positive workers count"))
                return
            if self.scale_hook is None:
                client.push(encode_error("scale unavailable: no supervisor"))
                return
            asyncio.get_running_loop().create_task(self.scale_hook(workers))
            client.push(
                json.dumps(
                    {"kind": "scale", "workers": workers, "status": "started"}
                )
            )
            return
        shard = payload.get("shard")
        if shard not in self.links:
            client.push(encode_error(f"unknown shard: {shard!r}"))
            return
        if shard in self.draining or shard in self.retired:
            client.push(encode_error(f"shard already draining: {shard}"))
            return
        if self.drain_hook is None:
            client.push(encode_error("drain unavailable: no supervisor"))
            return
        live = {s for s in self.links if s not in self.draining | self.retired}
        if len(live) <= 1:
            client.push(encode_error("cannot drain the last live shard"))
            return
        asyncio.get_running_loop().create_task(self.drain_hook(shard))
        client.push(json.dumps({"kind": "drain", "shard": shard, "status": "started"}))
