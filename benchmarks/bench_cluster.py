"""Cluster benchmark: scaling, crash recovery, and the invariance check.

The sharded service's claims, measured:

* **byte-identity** — the per-stroke reply lines of the 1/2/4-worker
  cluster are string-equal to both a single :class:`GestureServer` and
  the in-process reference pool, for the identical tick cadence;
* **throughput** — ops/sec through the router at 1, 2 and 4 workers
  against the single-process TCP baseline.  The >= 1.8x-at-4-workers
  assertion is skipped on boxes with fewer than four CPUs (a 1-core
  container cannot demonstrate parallelism); the measured numbers and
  the CPU count are published regardless, so they are honest either way;
* **crash recovery** — wall time from SIGKILLing a worker to the
  supervisor's replacement being respawned, reconnected, and replayed.

Results go to ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest
from conftest import write_bench_json, write_report

from repro.cluster import Cluster, drive_cluster, reference_lines, workload_ticks
from repro.eager import train_eager_recognizer
from repro.interaction import DEFAULT_TIMEOUT
from repro.serve import GestureServer, generate_workload
from repro.synth import GestureGenerator, gdp_templates

CLIENTS = 24
GESTURES_PER_CLIENT = 2
EXAMPLES = 12
SEED = 9
DT = 0.01
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def cluster_bench(tmp_path_factory):
    templates = gdp_templates()
    strokes = GestureGenerator(templates, seed=SEED).generate_strokes(EXAMPLES)
    recognizer = train_eager_recognizer(strokes).recognizer
    path = tmp_path_factory.mktemp("bench_cluster") / "recognizer.json"
    recognizer.save(path)
    workload = generate_workload(
        templates,
        clients=CLIENTS,
        gestures_per_client=GESTURES_PER_CLIENT,
        seed=SEED + 1,
    )
    ticks = workload_ticks(workload, dt=DT)
    end_t = len(ticks) * DT + DEFAULT_TIMEOUT + DT
    return recognizer, str(path), ticks, end_t


async def _timed_drive(host: str, port: int, ticks, end_t: float):
    start = time.perf_counter()
    replies, _ = await drive_cluster(host, port, ticks, end_t=end_t)
    return replies, time.perf_counter() - start


def test_cluster_numbers(cluster_bench):
    recognizer, path, ticks, end_t = cluster_bench
    reference = reference_lines(
        recognizer, ticks, end_t=end_t, timeout=DEFAULT_TIMEOUT
    )
    points = sum(len(group) for _, group in ticks)

    # Single-process TCP baseline: the same driver, the same wire
    # format, no router in between.
    async def baseline():
        server = GestureServer(recognizer, timeout=DEFAULT_TIMEOUT)
        await server.start()
        try:
            host, port = server.address
            return await _timed_drive(host, port, ticks, end_t)
        finally:
            await server.stop()

    replies, baseline_s = asyncio.run(baseline())
    assert replies == reference

    cluster_s: dict = {}
    for n in WORKER_COUNTS:

        async def run(workers=n):
            async with Cluster(
                path, workers=workers, timeout=DEFAULT_TIMEOUT
            ) as cluster:
                await cluster.wait_all_up()
                host, port = cluster.address
                return await _timed_drive(host, port, ticks, end_t)

        replies, elapsed = asyncio.run(run())
        assert replies == reference, f"{n}-worker replies not byte-identical"
        cluster_s[n] = elapsed

    # Crash recovery: SIGKILL one of two workers, time until the
    # replacement is respawned, reconnected, and its replay enqueued.
    async def recovery():
        async with Cluster(path, workers=2, timeout=DEFAULT_TIMEOUT) as cluster:
            await cluster.wait_all_up()
            ups = cluster.router.links["w0"].ups
            start = time.perf_counter()
            assert cluster.kill("w0") is not None
            await cluster.wait_recovered("w0", ups)
            return time.perf_counter() - start

    recovery_s = asyncio.run(recovery())

    cpus = os.cpu_count() or 1
    baseline_pps = points / baseline_s if baseline_s else 0.0
    pps = {n: points / s if s else 0.0 for n, s in cluster_s.items()}
    speedup = pps[4] / baseline_pps if baseline_pps else 0.0
    write_report(
        "cluster",
        f"Sharded cluster ({CLIENTS} clients, {points} ops, {cpus} cpus)\n"
        f"baseline (1 process): {baseline_pps:,.0f} ops/s\n"
        + "".join(
            f"{n} worker(s): {pps[n]:,.0f} ops/s "
            f"({pps[n] / baseline_pps:.2f}x)\n"
            for n in WORKER_COUNTS
        )
        + f"crash recovery: {recovery_s * 1000:.0f} ms\n"
        "replies byte-identical to the single pool at every worker count",
    )
    write_bench_json(
        "cluster",
        params={
            "clients": CLIENTS,
            "gestures_per_client": GESTURES_PER_CLIENT,
            "examples_per_class": EXAMPLES,
            "seed": SEED,
            "ops": points,
            "worker_counts": list(WORKER_COUNTS),
            "cpus": cpus,
        },
        results={
            "baseline_ops_per_sec": round(baseline_pps, 1),
            "cluster_ops_per_sec": {
                str(n): round(pps[n], 1) for n in WORKER_COUNTS
            },
            "speedup_4_workers": round(speedup, 3),
            "crash_recovery_s": round(recovery_s, 4),
            "byte_identical": True,
        },
    )
    if cpus < 4:
        pytest.skip(
            f"only {cpus} CPU(s): byte-identity asserted above, but a "
            "parallel speedup cannot be demonstrated on this machine"
        )
    assert speedup >= 1.8, (
        f"4 workers reached {pps[4]:,.0f} ops/s vs baseline "
        f"{baseline_pps:,.0f} = {speedup:.2f}x, expected >= 1.8x"
    )
