"""Command-line interface: ``python -m repro`` / ``repro-gestures``.

Subcommands:

* ``train`` — train an eager recognizer on a synthetic gesture family
  (or a saved dataset) and write it to JSON;
* ``classify`` — classify gestures from a dataset file with a saved
  recognizer;
* ``evaluate`` — run the paper's §5 protocol on a gesture family and
  print the summary and figure-9-style grid;
* ``demo`` — run a scripted GDP session and print the canvas.
"""

from __future__ import annotations

import argparse
import sys

from .datasets import GestureSet
from .eager import EagerRecognizer, train_eager_recognizer
from .evaluate import figure9_grid, run_experiment
from .synth import (
    GestureGenerator,
    eight_direction_templates,
    gdp_templates,
    note_templates,
    ud_templates,
)

__all__ = ["main"]

def _editing_templates():
    from .textedit import editing_templates

    return editing_templates()


_FAMILIES = {
    "directions": eight_direction_templates,
    "gdp": gdp_templates,
    "notes": note_templates,
    "ud": ud_templates,
    "editing": _editing_templates,
}


def _generator(family: str, seed: int) -> GestureGenerator:
    maker = _FAMILIES.get(family)
    if maker is None:
        raise SystemExit(
            f"unknown gesture family {family!r}; choose from {sorted(_FAMILIES)}"
        )
    return GestureGenerator(maker(), seed=seed)


def _cmd_train(args: argparse.Namespace) -> int:
    if args.dataset:
        gesture_set = GestureSet.load(args.dataset)
        strokes = gesture_set.strokes_by_class()
    else:
        strokes = _generator(args.family, args.seed).generate_strokes(
            args.examples
        )
    report = train_eager_recognizer(strokes)
    import json

    with open(args.output, "w") as f:
        json.dump(report.recognizer.to_dict(), f)
    print(f"trained on {sum(len(v) for v in strokes.values())} examples "
          f"across {len(strokes)} classes")
    print(f"recognizer written to {args.output}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    import json

    with open(args.recognizer) as f:
        recognizer = EagerRecognizer.from_dict(json.load(f))
    gesture_set = GestureSet.load(args.dataset)
    correct = 0
    for example in gesture_set:
        result = recognizer.recognize(example.stroke)
        ok = result.class_name == example.class_name
        correct += ok
        marker = "" if ok else "   <-- expected " + example.class_name
        print(
            f"{result.class_name:<16} seen {result.points_seen}/"
            f"{result.total_points}{marker}"
        )
    print(f"\n{correct}/{len(gesture_set)} correct")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    generator = _generator(args.family, args.seed)
    dataset = GestureSet.from_generator(
        args.family, generator, args.train + args.test
    )
    result, _ = run_experiment(dataset, train_per_class=args.train)
    print(result.summary())
    if args.grid:
        print()
        print(figure9_grid(result))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .events import perform_gesture
    from .gdp import GDPApp
    from .geometry import Stroke

    app = GDPApp()
    generator = GestureGenerator(gdp_templates(), seed=args.seed)
    print("GDP demo: rectangle, line, ellipse\n")
    rect = generator.generate("rect").stroke.translated(80, 80)
    app.perform(
        perform_gesture(
            rect,
            dwell=0.3,
            manipulation_path=Stroke.from_xy([(380, 300)], dt=0.02),
        )
    )
    line = generator.generate("line").stroke.translated(420, 80)
    app.perform(perform_gesture(line, dwell=0.3))
    ellipse = generator.generate("ellipse").stroke.translated(180, 420)
    app.perform(
        perform_gesture(
            ellipse,
            dwell=0.3,
            manipulation_path=Stroke.from_xy([(260, 480)], dt=0.02),
        )
    )
    print(app.render(cols=72, rows=20))
    print(f"\n{len(app.shapes)} shapes on the canvas")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gestures",
        description="Rubine (USENIX 1991) reproduction: gesture recognition "
        "and direct manipulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an eager recognizer")
    train.add_argument("--family", default="gdp", help="synthetic gesture family")
    train.add_argument("--dataset", help="train from a saved GestureSet JSON")
    train.add_argument("--examples", type=int, default=15, help="examples per class")
    train.add_argument("--seed", type=int, default=7)
    train.add_argument("--output", default="recognizer.json")
    train.set_defaults(func=_cmd_train)

    classify = sub.add_parser("classify", help="classify a dataset")
    classify.add_argument("recognizer", help="saved recognizer JSON")
    classify.add_argument("dataset", help="GestureSet JSON to classify")
    classify.set_defaults(func=_cmd_classify)

    evaluate = sub.add_parser("evaluate", help="run the paper's protocol")
    evaluate.add_argument("--family", default="directions")
    evaluate.add_argument("--train", type=int, default=10)
    evaluate.add_argument("--test", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--grid", action="store_true", help="print the fig-9 grid")
    evaluate.set_defaults(func=_cmd_evaluate)

    demo = sub.add_parser("demo", help="scripted GDP session")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
