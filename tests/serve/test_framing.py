"""lp1 framing conformance: round-trips, damage, negotiation, interop.

Three layers:

* :class:`~repro.serve.FrameReader` unit properties — any payload
  (embedded newlines, > 64 KiB) round-trips; truncated, oversized, and
  garbage-prefixed streams produce exactly one error event each and
  leave the reader in sync;
* a live :class:`~repro.serve.GestureServer` — negotiation outcomes
  (ack, refusal, unknown, late), damaged frames answered with protocol
  errors while the connection survives, and reply *payloads* identical
  between an NDJSON and an lp1 connection;
* mixed-fleet interop — an in-process cluster whose router speaks lp1
  to some workers and NDJSON to others (``no_lp1_shards``) must be
  byte-identical at the client to an all-NDJSON fleet and to the
  single-pool reference.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    DEFAULT_MAX_FRAME,
    DEFAULT_MAX_LINE,
    FrameReader,
    GestureServer,
    encode_frame,
    encode_frames,
    encode_hello,
)

from .test_server import _stroke_requests

# -- unit: FrameReader round-trips and damage ------------------------------


def _events(
    data: bytes, *, max_frame: int = DEFAULT_MAX_FRAME, initial: bytes = b""
) -> list:
    """Decode ``data`` (optionally seeded with ``initial``) to events."""

    async def collect():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = FrameReader(reader, max_frame, initial=initial)
        out = []
        while True:
            event = await frames.next()
            out.append(event)
            if event[0] == "eof":
                return out

    return asyncio.run(collect())


@settings(deadline=None, max_examples=60)
@given(payloads=st.lists(st.binary(min_size=0, max_size=300), max_size=8))
def test_any_payloads_round_trip(payloads):
    events = _events(encode_frames(payloads))
    assert events == [("line", p) for p in payloads] + [("eof", b"")]


def test_large_payload_with_newlines_round_trips():
    # Over the NDJSON line cap and full of newlines: exactly what lp1
    # exists to carry, impossible on the line-framed wire.
    payload = (b'{"pad": "' + b"x\n" * 40_000 + b'"}')
    assert len(payload) > DEFAULT_MAX_LINE
    events = _events(encode_frame(payload))
    assert events == [("line", payload), ("eof", b"")]


def test_truncated_frame_reports_once_then_eof():
    whole = encode_frame(b'{"op": "tick", "t": 1}')
    events = _events(whole[:-5])
    assert events == [("truncated", b""), ("eof", b"")]


def test_truncated_header_reports_truncated():
    events = _events(b"\xa7\x00\x00")  # magic + partial length
    assert events == [("truncated", b""), ("eof", b"")]


def test_garbage_prefix_is_one_event_then_resync():
    # A garbage run (no 0xA7 anywhere) costs exactly one event; the
    # reader resynchronises on the next magic byte.
    data = b"NOT A FRAME" + encode_frame(b"ok") + b"??" + encode_frame(b"ok2")
    events = _events(data)
    assert events == [
        ("garbage", b""),
        ("line", b"ok"),
        ("garbage", b""),
        ("line", b"ok2"),
        ("eof", b""),
    ]


def test_oversized_frame_is_skipped_and_stream_stays_in_sync():
    data = encode_frame(b"z" * 1000) + encode_frame(b"after")
    events = _events(data, max_frame=64)
    assert events == [("overflow", b""), ("line", b"after"), ("eof", b"")]


def test_initial_buffer_is_consumed_before_the_stream():
    # Frames pipelined behind the hello line arrive via `initial`.
    events = _events(encode_frame(b"second"), initial=encode_frame(b"first"))
    assert events == [
        ("line", b"first"),
        ("line", b"second"),
        ("eof", b""),
    ]


# -- server: negotiation and survival --------------------------------------


def _encode_request(req) -> str:
    payload = {"op": req.op, "t": req.t}
    if req.op != "tick":
        payload.update(stroke=req.stroke, x=req.x, y=req.y)
    return json.dumps(payload)


def _gesture_payloads(stroke: str) -> list:
    return [_encode_request(r).encode() for r in _stroke_requests(stroke)]


async def _read_frames_until(frames: FrameReader, kind: str, limit: int = 50):
    replies = []
    for _ in range(limit):
        event, payload = await asyncio.wait_for(frames.next(), timeout=5.0)
        assert event == "line", (event, payload)
        replies.append(payload.decode())
        if json.loads(payload)["kind"] == kind:
            return replies
    raise AssertionError(f"no {kind!r} within {limit} frames")


async def _read_lines_until(reader, kind: str, limit: int = 50):
    replies = []
    for _ in range(limit):
        raw = await asyncio.wait_for(reader.readline(), timeout=5.0)
        assert raw, f"connection closed while waiting for {kind}"
        replies.append(raw.decode().rstrip("\n"))
        if json.loads(raw)["kind"] == kind:
            return replies
    raise AssertionError(f"no {kind!r} within {limit} lines")


def _with_server(scenario, recognizer, **server_kw):
    async def run():
        server = GestureServer(recognizer, **server_kw)
        await server.start()
        try:
            return await scenario(*server.address)
        finally:
            await server.stop()

    return asyncio.run(run())


def test_lp1_and_ndjson_clients_get_identical_payloads(directions_recognizer):
    async def scenario(host, port):
        # NDJSON connection.
        reader, writer = await asyncio.open_connection(host, port)
        for payload in _gesture_payloads("s"):
            writer.write(payload + b"\n")
        await writer.drain()
        nd = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        # lp1 connection, same ops as frames.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((encode_hello("lp1") + "\n").encode())
        writer.write(encode_frames(_gesture_payloads("s2")))
        await writer.drain()
        frames = FrameReader(reader)
        kind, ack = await frames.next()
        assert kind == "line"
        assert json.loads(ack) == {"kind": "hello", "framing": "lp1"}
        lp = await _read_frames_until(frames, "commit")
        writer.close()
        await writer.wait_closed()
        return nd, lp

    nd, lp = _with_server(scenario, directions_recognizer)
    # Reply payloads are identical modulo the stroke id each client used.
    assert [l.replace('"s"', '"X"') for l in nd] == [
        l.replace('"s2"', '"X"') for l in lp
    ]


def test_ndjson_hello_acks_and_stays_ndjson(directions_recognizer):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((encode_hello("ndjson") + "\n").encode())
        for payload in _gesture_payloads("s"):
            writer.write(payload + b"\n")
        await writer.drain()
        replies = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer)
    assert json.loads(replies[0]) == {"kind": "hello", "framing": "ndjson"}
    assert json.loads(replies[-1])["kind"] == "commit"


def test_unknown_framing_is_refused_connection_survives(directions_recognizer):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "hello", "framing": "zz"}\n')
        for payload in _gesture_payloads("s"):
            writer.write(payload + b"\n")
        await writer.drain()
        replies = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer)
    first = json.loads(replies[0])
    assert first["kind"] == "error"
    assert first["reason"] == "unknown framing: 'zz'"
    assert json.loads(replies[-1])["kind"] == "commit"


def test_lp1_refused_when_disabled(directions_recognizer):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((encode_hello("lp1") + "\n").encode())
        for payload in _gesture_payloads("s"):
            writer.write(payload + b"\n")
        await writer.drain()
        replies = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer, allow_lp1=False)
    first = json.loads(replies[0])
    assert first["kind"] == "error"
    assert first["reason"] == "framing lp1 unsupported"
    assert json.loads(replies[-1])["kind"] == "commit"


def test_late_hello_is_rejected_framing_unchanged(directions_recognizer):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        payloads = _gesture_payloads("s")
        writer.write(payloads[0] + b"\n")
        # Mid-connection renegotiation attempt: must be refused, and the
        # connection must continue in NDJSON.
        writer.write((encode_hello("lp1") + "\n").encode())
        for payload in payloads[1:]:
            writer.write(payload + b"\n")
        await writer.drain()
        replies = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer)
    errors = [json.loads(r) for r in replies if json.loads(r)["kind"] == "error"]
    assert len(errors) == 1
    assert errors[0]["reason"] == (
        "late hello: framing is negotiated on the first line"
    )
    assert json.loads(replies[-1])["kind"] == "commit"


def test_damaged_frames_get_errors_connection_survives(directions_recognizer):
    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((encode_hello("lp1") + "\n").encode())
        await writer.drain()
        frames = FrameReader(reader)
        kind, ack = await frames.next()
        assert json.loads(ack)["framing"] == "lp1"
        # Garbage where a magic byte should be...
        writer.write(b"GARBAGE BYTES")
        # ...then an oversized frame (past the server's max_frame)...
        writer.write(b"\xa7" + (200).to_bytes(4, "big") + b"z" * 200)
        # ...then a healthy gesture.
        writer.write(encode_frames(_gesture_payloads("ok")))
        await writer.drain()
        replies = await _read_frames_until(frames, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer, max_frame=64)
    errors = [json.loads(r)["reason"] for r in replies if json.loads(r)["kind"] == "error"]
    assert errors == ["bad frame magic", "frame exceeds 64 bytes"]
    assert json.loads(replies[-1])["kind"] == "commit"


def test_truncated_lp1_client_does_not_wedge_the_server(directions_recognizer):
    async def scenario(host, port):
        # First client negotiates lp1 and dies mid-frame.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write((encode_hello("lp1") + "\n").encode())
        writer.write(encode_frame(b'{"op": "tick", "t": 1}')[:-3])
        await writer.drain()
        frames = FrameReader(reader)
        await frames.next()  # the hello ack
        writer.close()
        await writer.wait_closed()
        # The server must still serve a fresh connection.
        reader, writer = await asyncio.open_connection(host, port)
        for payload in _gesture_payloads("s"):
            writer.write(payload + b"\n")
        await writer.drain()
        replies = await _read_lines_until(reader, "commit")
        writer.close()
        await writer.wait_closed()
        return replies

    replies = _with_server(scenario, directions_recognizer)
    assert json.loads(replies[-1])["kind"] == "commit"


# -- mixed-fleet interop ---------------------------------------------------


def test_mixed_fleet_is_byte_identical_at_the_client(gdp_recognizer):
    from repro.cluster import workload_ticks
    from repro.serve import generate_workload
    from repro.synth import gdp_templates

    from tests.cluster.inproc import (
        InProcessCluster,
        drive_script,
        reference_script,
    )
    from tests.cluster.test_cluster import DT, assert_byte_identical, end_time

    workload = generate_workload(
        gdp_templates(), clients=4, gestures_per_client=1, seed=5
    )
    ticks = workload_ticks(workload, dt=DT)
    end_t = end_time(ticks)
    script = [("ops", t, group) for t, group in ticks]
    script = [item for pair in zip(script, [("tick", t) for t, _ in ticks]) for item in pair]
    script += [("tick", end_t), ("sweep", 0.0)]
    expected = reference_script(gdp_recognizer, script)

    def run(framing, no_lp1_shards=()):
        async def go():
            async with InProcessCluster(
                gdp_recognizer,
                3,
                framing=framing,
                no_lp1_shards=no_lp1_shards,
            ) as cluster:
                return await drive_script(cluster, script)

        return asyncio.run(go())

    for replies in (
        run("lp1"),
        run("ndjson"),
        run("lp1", no_lp1_shards=("w1",)),  # mixed: w1 falls back
    ):
        assert_byte_identical(replies, expected)
