"""In-process cluster harness for the differential fuzz suite.

Spinning real worker *subprocesses* per hypothesis example is far too
slow (and makes shrinking miserable), so :class:`InProcessCluster` runs
the same data plane — a real :class:`~repro.cluster.router.Router` in
front of N real :class:`~repro.serve.GestureServer` instances — inside
one event loop, over real TCP sockets.  Nothing is mocked: framing
negotiation, journaling, replay, migration, drain, join/scale, and
swap broadcast all run the production code paths.  Only the supervisor
is absent; its duties (restart-on-death, spawn-on-join,
terminate-on-retire) are played by :meth:`crash`, :meth:`join`, and
:meth:`drain`, which drive the router through the exact
``worker_down`` → ``worker_up`` / rebalance / retire choreography the
supervisor would.

:func:`drive_script` generalises ``drive_cluster`` from "tick groups"
to an event *script* — ops, barriers, sweeps, swaps, raw (malformed or
non-canonical) lines, crashes, drains, joins, scale ops, connection
churn — so a fuzzer can interleave faults and elastic topology changes
with traffic at arbitrary positions.
:func:`reference_script` consumes the same script against a single
:class:`~repro.serve.SessionPool`, ignoring the fault events (the
byte-identity invariant says they must be invisible), and predicts the
router's non-decision replies (error lines, swap acks, drain acks)
byte-for-byte.
"""

from __future__ import annotations

import asyncio
import json

from repro.cluster import Router
from repro.interaction import DEFAULT_TIMEOUT
from repro.serve import (
    GestureServer,
    ProtocolError,
    SessionPool,
    decode_payload,
    encode_decision,
    encode_error,
    encode_swap,
    negotiate,
)

__all__ = [
    "InProcessCluster",
    "churn_connection",
    "drive_script",
    "reference_script",
]


class InProcessCluster:
    """A router and N in-process GestureServer workers, one event loop."""

    def __init__(
        self,
        recognizer,
        workers: int = 2,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        framing: str = "lp1",
        no_lp1_shards=(),
        registry=None,
    ):
        self.recognizer = recognizer
        self.timeout = timeout
        self.registry = registry
        self.no_lp1_shards = frozenset(no_lp1_shards)
        self.shards = tuple(f"w{i}" for i in range(workers))
        self.router = Router(
            self.shards, registry=registry, worker_framing=framing
        )
        self.router.drain_hook = self.drain
        self.router.scale_hook = self.scale_to
        self.servers: dict[str, GestureServer] = {}
        self._next_worker = workers
        self._scale_lock = asyncio.Lock()

    async def start(self) -> None:
        await self.router.start()
        for shard in self.shards:
            await self._up(shard)

    async def stop(self) -> None:
        await self.router.stop()
        for server in self.servers.values():
            await server.stop()
        self.servers.clear()

    async def __aenter__(self) -> "InProcessCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return self.router.address

    async def _up(self, shard: str) -> None:
        server = GestureServer(
            self.recognizer,
            port=0,
            timeout=self.timeout,
            registry=self.registry,
            allow_lp1=shard not in self.no_lp1_shards,
        )
        await server.start()
        self.servers[shard] = server
        host, port = server.address
        await self.router.worker_up(shard, host, port)

    async def crash(self, shard: str) -> None:
        """Kill one worker's state and bring up a fresh one.

        ``worker_down`` runs *first* — it severs the router-side link,
        so replies the dying worker produced but the router never read
        are lost, exactly as with a SIGKILL.  The fresh ``worker_up``
        then runs the real journal replay.
        """
        await self.router.worker_down(shard)
        old = self.servers.pop(shard, None)
        if old is not None:
            await old.stop()
        await self._up(shard)

    async def drain(self, shard: str) -> None:
        """The harness drain-by-migration, minus the subprocess kill."""
        if shard in self.router.draining or shard in self.router.retired:
            return
        self.router.draining.add(shard)
        await self.router.quiesce()
        self.router.migrate_off(shard)
        await self.router.worker_down(shard)
        server = self.servers.pop(shard, None)
        if server is not None:
            await server.stop()
        self.router.retired.add(shard)
        self.router.draining.discard(shard)

    async def join(self, shard: str | None = None) -> str:
        """Scale out by one in-process worker, mirroring Cluster.join."""
        if shard is None:
            while shard is None or shard in self.router.links:
                shard = f"w{self._next_worker}"
                self._next_worker += 1
        self.router.add_shard(shard)
        await self._up(shard)
        await self.router.quiesce()
        self.router.rebalance(self.router.ring.with_shard(shard))
        return shard

    async def scale_to(self, workers: int) -> None:
        """Walk the live fleet to ``workers``, mirroring Cluster.scale_to."""
        target = max(1, workers)
        async with self._scale_lock:
            while True:
                live = [
                    s
                    for s in self.router.links
                    if s not in self.router.retired
                    and s not in self.router.draining
                ]
                if len(live) < target:
                    await self.join()
                elif len(live) > target:
                    await self.drain(live[-1])
                else:
                    return

    async def wait_retired(self, shard: str, timeout: float = 60.0) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while shard not in self.router.retired:
            if loop.time() >= deadline:
                raise TimeoutError(f"{shard} never retired")
            await asyncio.sleep(0.01)


async def churn_connection(host: str, port: int) -> None:
    """One short-lived extra client: probe, garbage, hang up.

    Exercises connection churn without perturbing the primary stream —
    replies are per-connection, and neither line below touches the
    shared clock or any session.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(b'{"op": "hello", "framing": "lp1"}\nnot json!\n')
        await writer.drain()
        first = json.loads(await reader.readline())
        assert first["kind"] == "error", first
        assert first["reason"] == "framing lp1 unsupported", first
        second = json.loads(await reader.readline())
        assert second["kind"] == "error", second
        assert second["reason"].startswith("bad json"), second
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def drive_script(
    cluster: InProcessCluster, script, *, barrier_timeout: float = 120.0
):
    """Play an event script over one client connection; collect replies.

    Events (tuples, first element is the kind):

    - ``("ops", t, group)`` — one tick group of ``(op, stroke, x, y)``
    - ``("tick", t)`` / ``("sweep", max_idle)`` — barriers
    - ``("swap", user, model, t)`` — a model swap request
    - ``("raw", line)`` — a verbatim line (malformed or non-canonical)
    - ``("crash", shard)`` / ``("drain", shard)`` — faults
    - ``("join",)`` — scale out by one worker (live rebalance migration)
    - ``("scale", n)`` — the ``{"op": "scale"}`` admin request
    - ``("wait_workers", n)`` — block until the live fleet counts ``n``
    - ``("churn",)`` — an unrelated connection opens, errs, closes
    - ``("wait_retired", shard)`` — block until a drain completes

    Ends with the usual ``stats`` completion barrier.  Returns the
    per-stroke reply dict (non-decision replies land under ``""``).
    """
    host, port = cluster.address
    reader, writer = await asyncio.open_connection(host, port)
    replies: dict[str, list[str]] = {}
    done = asyncio.Event()

    async def read_replies() -> None:
        while True:
            raw = await reader.readline()
            if not raw:
                break
            obj = json.loads(raw)
            if obj.get("kind") == "stats":
                done.set()
                break
            replies.setdefault(obj.get("stroke", ""), []).append(
                raw.decode().rstrip("\n")
            )

    read_task = asyncio.get_running_loop().create_task(read_replies())

    async def send(*lines: str) -> None:
        writer.write(("\n".join(lines) + "\n").encode())
        await writer.drain()

    try:
        for event in script:
            kind = event[0]
            if kind == "ops":
                _, t, group = event
                if group:
                    await send(
                        *(
                            json.dumps(
                                {
                                    "op": name,
                                    "stroke": key,
                                    "x": x,
                                    "y": y,
                                    "t": t,
                                }
                            )
                            for name, key, x, y in group
                        )
                    )
            elif kind == "tick":
                await send(json.dumps({"op": "tick", "t": event[1]}))
            elif kind == "sweep":
                await send(
                    json.dumps({"op": "sweep", "max_idle": event[1]})
                )
            elif kind == "swap":
                _, user, model, t = event
                await send(
                    json.dumps(
                        {"op": "swap", "user": user, "model": model, "t": t}
                    )
                )
            elif kind == "raw":
                await send(event[1])
            elif kind == "crash":
                await cluster.crash(event[1])
            elif kind == "drain":
                await send(json.dumps({"op": "drain", "shard": event[1]}))
            elif kind == "join":
                await cluster.join()
            elif kind == "scale":
                await send(
                    json.dumps({"op": "scale", "workers": event[1]})
                )
            elif kind == "wait_workers":
                target = event[1]
                loop = asyncio.get_running_loop()
                deadline = loop.time() + barrier_timeout
                while True:
                    live = [
                        s
                        for s in cluster.router.links
                        if s not in cluster.router.retired
                        and s not in cluster.router.draining
                    ]
                    if len(live) == target:
                        break
                    if loop.time() >= deadline:
                        raise TimeoutError(
                            f"fleet never reached {target} workers"
                        )
                    await asyncio.sleep(0.01)
            elif kind == "churn":
                await churn_connection(host, port)
            elif kind == "wait_retired":
                await cluster.wait_retired(event[1])
            else:  # pragma: no cover - scripted by the test author
                raise ValueError(f"unknown script event: {event!r}")
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=barrier_timeout)
    finally:
        read_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return replies


def _non_op_reply(line: str, first: bool = False):
    """Predict the router's reply for a line that is not a session op.

    Mirrors the router's legacy client path exactly (same json error
    text, same ``decode_payload`` messages, same hello negotiation), so
    the expected error bytes need no hand-maintained table.  Returns
    ``(reply, None)`` for error/hello lines and ``(None, request)``
    when the line is a *valid* session op in non-canonical form, which
    the reference must then apply to the pool.  ``first`` says whether
    this is the connection's very first line — a hello is then a
    genuine negotiation probe (refused: the client hop is NDJSON-only)
    rather than the late-hello error.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        return encode_error(f"bad json: {exc}"), None
    if isinstance(payload, dict) and payload.get("op") == "hello":
        reply, _ = negotiate(payload, first=first, allow_lp1=False)
        return reply, None
    try:
        request = decode_payload(payload)
    except ProtocolError as exc:
        return encode_error(str(exc)), None
    if request.op in ("release", "pin"):
        # Migration internals: valid protocol, but the router refuses
        # them from clients (same bytes as Router._route_line).
        return (
            encode_error(
                f"internal op: {request.op}",
                stroke=request.stroke,
                t=request.t,
            ),
            None,
        )
    return None, request


def reference_script(
    recognizer,
    script,
    *,
    registry=None,
    timeout: float = DEFAULT_TIMEOUT,
    max_sessions: int = 4096,
) -> dict[str, list[str]]:
    """What a single pool — and the router's own replies — say.

    Crash and churn events are skipped: the invariant under test is
    precisely that they leave no trace in the reply bytes.  Drains
    contribute only their ack line; routing changes are invisible."""
    pool = SessionPool(
        recognizer, timeout=timeout, batched=True, max_sessions=max_sessions
    )
    replies: dict[str, list[str]] = {}
    latest = float("-inf")
    # Whether any line has been sent on the primary connection yet —
    # a raw hello landing *first* takes the negotiation path (refused,
    # the client hop is NDJSON-only), not the late-hello error.
    seen = False

    def emit(decisions) -> None:
        for d in decisions:
            replies.setdefault(d.key, []).append(encode_decision(d, d.key))

    def misc(line: str) -> None:
        replies.setdefault("", []).append(line)

    for event in script:
        kind = event[0]
        if kind == "ops":
            _, t, group = event
            if group:
                pool.submit(group, t)
                latest = max(latest, t)
                seen = True
        elif kind == "tick":
            latest = max(latest, event[1])
            emit(pool.advance_to(latest))
            seen = True
        elif kind == "sweep":
            if latest > float("-inf"):
                emit(pool.advance_to(latest))
            emit(pool.evict_idle(event[1]))
            seen = True
        elif kind == "swap":
            _, user, model, t = event
            name, _, version = model.partition("@")
            if not version:
                version = registry.latest_version(name)
            pinned = f"{name}@{version}"
            pool.swap_model(
                user, registry.load(name, version), t, label=pinned
            )
            misc(encode_swap(user, pinned, t))
            seen = True
        elif kind == "raw":
            reply, request = _non_op_reply(event[1], first=not seen)
            seen = True
            if reply is not None:
                misc(reply)
            else:
                pool.submit(
                    [(request.op, request.stroke, request.x, request.y)],
                    request.t,
                )
                latest = max(latest, request.t)
        elif kind == "drain":
            misc(
                json.dumps(
                    {"kind": "drain", "shard": event[1], "status": "started"}
                )
            )
            seen = True
        elif kind == "scale":
            misc(
                json.dumps(
                    {
                        "kind": "scale",
                        "workers": event[1],
                        "status": "started",
                    }
                )
            )
            seen = True
        # crash / join / churn / wait_workers / wait_retired: invisible
        # by construction — topology is not allowed to touch the bytes.
    return replies
