"""Unit tests for GDP's shape models."""

import math

import pytest

from repro.gdp import (
    EllipseShape,
    GroupShape,
    LineShape,
    RectShape,
    TextShape,
)
from repro.geometry import Affine


class TestLineShape:
    def test_endpoints(self):
        line = LineShape(0, 0, 10, 10)
        assert line.endpoints == [(0, 0), (10, 10)]

    def test_set_endpoint(self):
        line = LineShape(0, 0, 10, 10)
        line.set_endpoint(1, 20, 30)
        assert line.endpoints[1] == (20, 30)

    def test_bounds(self):
        box = LineShape(1, 2, 5, 8).bounds()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1, 2, 5, 8)

    def test_hit_on_segment(self):
        assert LineShape(0, 0, 100, 0).hit(50, 2, tolerance=4)

    def test_miss_off_segment(self):
        assert not LineShape(0, 0, 100, 0).hit(50, 30, tolerance=4)

    def test_thickness_widens_hit(self):
        thin = LineShape(0, 0, 100, 0, thickness=1)
        thick = LineShape(0, 0, 100, 0, thickness=20)
        assert not thin.hit(50, 12, tolerance=4)
        assert thick.hit(50, 12, tolerance=4)

    def test_move_by(self):
        line = LineShape(0, 0, 10, 0)
        line.move_by(5, 5)
        assert line.endpoints == [(5, 5), (15, 5)]

    def test_clone_is_independent(self):
        line = LineShape(0, 0, 10, 0)
        clone = line.clone()
        clone.set_endpoint(0, 99, 99)
        assert line.endpoints[0] == (0, 0)
        assert clone.id != line.id

    def test_control_points_drag_endpoints(self):
        line = LineShape(0, 0, 10, 0)
        cps = line.control_points()
        assert len(cps) == 2
        cps[1].move_by(5, 5)
        assert line.endpoints[1] == (15, 5)

    def test_change_notification(self):
        line = LineShape(0, 0, 1, 1)
        seen = []
        line.add_observer(seen.append)
        line.set_endpoint(0, 2, 2)
        assert seen == [line]


class TestRectShape:
    def test_corner_points_axis_aligned(self):
        rect = RectShape(0, 0, 10, 20)
        assert set(rect.corner_points()) == {(0, 0), (10, 0), (10, 20), (0, 20)}

    def test_set_corner_rubberbands(self):
        rect = RectShape(0, 0, 1, 1)
        rect.set_corner(1, 50, 60)
        assert rect.corners[1] == (50, 60)

    def test_hit_on_outline_not_interior(self):
        rect = RectShape(0, 0, 100, 100)
        assert rect.hit(50, 0, tolerance=3)  # on an edge
        assert not rect.hit(50, 50, tolerance=3)  # interior is hollow

    def test_rotation_moves_corners(self):
        rect = RectShape(0, 0, 10, 10)
        rect.apply_transform(
            Affine.about(rect.bounds().center, Affine.rotation(math.pi / 4))
        )
        assert rect.angle == pytest.approx(math.pi / 4)
        xs = [x for x, _ in rect.corner_points()]
        # Rotated square's width along x grows to 10*sqrt(2).
        assert max(xs) - min(xs) == pytest.approx(10 * math.sqrt(2), rel=1e-6)

    def test_rotate_scale_about(self):
        rect = RectShape(0, 0, 10, 10)
        rect.rotate_scale_about(0, 0, 0.0, 2.0)
        assert rect.corners[1] == (pytest.approx(20.0), pytest.approx(20.0))

    def test_clone_preserves_angle(self):
        rect = RectShape(0, 0, 10, 10, angle=0.5)
        assert rect.clone().angle == 0.5


class TestEllipseShape:
    def test_radii_clamped_positive(self):
        ellipse = EllipseShape(0, 0, rx=0.0, ry=-1.0)
        assert ellipse.rx > 0
        ellipse.set_radii(0.0, 0.0)
        assert ellipse.rx > 0 and ellipse.ry > 0

    def test_bounds(self):
        box = EllipseShape(10, 10, rx=5, ry=3).bounds()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (5, 7, 15, 13)

    def test_hit_on_outline(self):
        ellipse = EllipseShape(0, 0, rx=50, ry=30)
        assert ellipse.hit(50, 0, tolerance=4)
        assert ellipse.hit(0, 30, tolerance=4)

    def test_miss_center_and_far(self):
        ellipse = EllipseShape(0, 0, rx=50, ry=30)
        assert not ellipse.hit(0, 0, tolerance=4)
        assert not ellipse.hit(100, 100, tolerance=4)

    def test_transform_scales_radii(self):
        ellipse = EllipseShape(0, 0, rx=10, ry=10)
        ellipse.apply_transform(Affine.scaling(2.0, 3.0))
        assert ellipse.rx == pytest.approx(20)
        assert ellipse.ry == pytest.approx(30)

    def test_control_points_adjust_radii(self):
        ellipse = EllipseShape(0, 0, rx=10, ry=10)
        rx_handle, ry_handle = ellipse.control_points()
        rx_handle.move_by(5, 0)
        assert ellipse.rx == pytest.approx(15)
        ry_handle.move_by(0, -3)
        assert ellipse.ry == pytest.approx(7)


class TestTextShape:
    def test_bounds_scale_with_text(self):
        short = TextShape(0, 0, "ab")
        long = TextShape(0, 0, "abcdefgh")
        assert long.bounds().width > short.bounds().width

    def test_hit_within_inflated_bounds(self):
        text = TextShape(0, 0, "hello")
        assert text.hit(10, -5)
        assert not text.hit(500, 500)

    def test_set_position(self):
        text = TextShape(0, 0)
        text.set_position(30, 40)
        assert text.position == (30, 40)

    def test_clone(self):
        text = TextShape(1, 2, "hi")
        clone = text.clone()
        assert clone.text == "hi"
        assert clone.position == (1, 2)
        assert clone.id != text.id


class TestGroupShape:
    def make_group(self):
        a = LineShape(0, 0, 10, 0)
        b = RectShape(20, 20, 30, 30)
        return GroupShape([a, b]), a, b

    def test_bounds_union(self):
        group, a, b = self.make_group()
        box = group.bounds()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 0, 30, 30)

    def test_hit_any_member(self):
        group, a, b = self.make_group()
        assert group.hit(5, 0, tolerance=3)
        assert group.hit(25, 20, tolerance=3)
        assert not group.hit(15, 10, tolerance=3)

    def test_move_moves_members(self):
        group, a, b = self.make_group()
        group.move_by(5, 5)
        assert a.endpoints[0] == (5, 5)
        assert b.corners[0] == (25, 25)

    def test_add_member_ignores_duplicates_and_self(self):
        group, a, b = self.make_group()
        group.add_member(a)
        assert group.members.count(a) == 1
        group.add_member(group)
        assert group not in group.members

    def test_remove_member(self):
        group, a, b = self.make_group()
        group.remove_member(a)
        assert a not in group.members

    def test_flattened_recurses(self):
        inner, a, b = self.make_group()
        c = TextShape(0, 0)
        outer = GroupShape([inner, c])
        assert set(outer.flattened()) == {a, b, c}

    def test_clone_deep_copies(self):
        group, a, b = self.make_group()
        clone = group.clone()
        clone.members[0].move_by(100, 100)
        assert a.endpoints[0] == (0, 0)

    def test_empty_group_bounds(self):
        assert GroupShape().bounds().is_empty
